#!/usr/bin/env python3
"""fc_lint: project-invariant static analyzer for the fastcoreset repo.

Generic tools cannot see this project's three load-bearing contracts:

  * bit-identical results at any FC_THREADS (the determinism contract),
  * the non-aborting FcStatus/FcStatusOr error model in src/api/,
    src/service/, and src/net/ (the serving stack must never die on a
    bad request or misbehaving client),
  * the PR 6 annotated-locking discipline (src/common/mutex.h wrappers).

fc_lint makes them machine-checked. Each rule has an ID, a fix-it-style
message, and a suppression syntax that *requires* a written rationale:

    // fc-lint: allow(<rule-id>): <why this site is safe>

A suppression comment covers its own line and, when it stands alone on a
line, the next line. A suppression without a rationale — or naming an
unknown rule — is itself an error (`bad-suppression`).

Rules (see RULES below for scope and details):

  status-value-unchecked   .value()/operator*/-> on an FcStatusOr with no
                           dominating .ok() guard in the enclosing function
  no-abort-in-service      FC_CHECK/abort/throw/exit in src/api,
                           src/service, src/net
  raw-mutex                std::mutex & friends outside src/common/mutex.h
  nondeterministic-iteration  iterating unordered_{map,set} in src/
  banned-entropy           rand/random_device/time/chrono-now outside the
                           Timer/Rng abstractions
  umbrella-include         bench/examples reaching past src/api/fastcoreset.h
                           into per-method compression headers
  layering-violation       src/ include edges that leave the module DAG
                           declared in tools/lint/layers.toml (--dot-out
                           emits the actual graph as graphviz)
  lock-order               fc::Mutex sites missing from (or disagreeing
                           with) tools/lint/lock_hierarchy.toml, and
                           lexical acquisition patterns that take a
                           lower-rank lock while holding a higher one
  determinism-taint        thread-count/timer-derived values flowing into
                           chunk/shard plans, sampler seeds, or
                           non-diagnostics result fields

Project passes
--------------
The last three rules are cross-file: they are parameterized by the two
checked-in config files (tools/lint/layers.toml — the module DAG;
tools/lint/lock_hierarchy.toml — integer ranks for every long-lived
Mutex), and the layering pass accumulates the observed module include
graph across the whole run (`--dot-out graph.dot` writes it; the run
fails if the ACTUAL graph has a cycle, declared or not). Config errors
(unparseable TOML, cyclic declared DAG, malformed lock entries) are
findings like any other.

Fixes
-----
`--fix` mechanically rewrites the two include-shaped rules in place:
umbrella-include lines become `#include "src/api/fastcoreset.h"` and
raw-mutex includes become `#include "src/common/mutex.h"` (first banned
include rewritten, duplicates deleted; suppressed lines untouched). The
rewrite is idempotent — the selftest asserts fix(fix(x)) == fix(x).

Engines
-------
Rule logic consumes a normalized token stream. Two producers exist:

  * builtin — a self-contained C++ lexer (no dependencies). Authoritative:
    the fixture corpus and CI gate run on it everywhere.
  * clang   — libclang's lexer via the `clang.cindex` Python bindings,
    feeding the same normalized stream (used where the bindings and
    libclang are installed; `--engine auto` picks it up automatically).

Comment/suppression parsing and #include extraction always use the builtin
lexer so suppressions and the umbrella rule behave identically under both
engines.

Baseline
--------
`--baseline FILE` loads grandfathered findings (file+rule+count triples);
matched findings are reported as "baselined" and do not fail the run.
`--write-baseline FILE` records the current findings. The committed
baseline (tools/lint/fc_lint_baseline.json) is empty and must stay empty:
new findings are fixed or suppressed with a rationale, not baselined.

Typical invocations (from the repo root):

    python3 tools/lint/fc_lint.py src tools bench examples
    python3 tools/lint/fc_lint.py --selftest
    python3 tools/lint/fc_lint.py --list-rules
    python3 tools/lint/fc_lint.py --rules layering-violation \
        --dot-out module_deps.dot src
    python3 tools/lint/fc_lint.py --fix bench examples
"""

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

# --------------------------------------------------------------------------
# Tokens
# --------------------------------------------------------------------------

# Token kinds: 'id' (identifier or keyword), 'num', 'str' (string literal),
# 'chr' (char literal), 'punct'.


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int


# Maximal-munch puncts, longest first, mirroring clang's lexer so both
# engines produce the same stream.
_PUNCTS = [
    "<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
    "^=", "##",
]

_ID_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_ID_CONT = _ID_START | set("0123456789")


@dataclass
class LexResult:
    tokens: List[Token]
    comments: List[Tuple[int, str]]  # (line, comment text incl. delimiters)
    # Source with comments replaced by spaces (string literals intact),
    # used for #include extraction.
    stripped: str


def lex_builtin(text: str) -> LexResult:
    """Hand-rolled C++ lexer: tokens + comments + comment-stripped text."""
    tokens: List[Token] = []
    comments: List[Tuple[int, str]] = []
    stripped = list(text)
    i, n, line = 0, len(text), 1

    def blank(a: int, b: int) -> None:
        for j in range(a, b):
            if stripped[j] not in "\n":
                stripped[j] = " "

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        # Line comment.
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            comments.append((line, text[i:j]))
            blank(i, j)
            i = j
            continue
        # Block comment.
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            comments.append((line, text[i:j]))
            blank(i, j)
            line += text.count("\n", i, j)
            i = j
            continue
        # Raw string literal: R"delim( ... )delim".
        if c == "R" and i + 1 < n and text[i + 1] == '"':
            m = re.match(r'R"([^()\\ \t\n]*)\(', text[i:])
            if m:
                end_mark = ")" + m.group(1) + '"'
                j = text.find(end_mark, i + m.end())
                j = n if j == -1 else j + len(end_mark)
                tokens.append(Token("str", text[i:j], line))
                line += text.count("\n", i, j)
                i = j
                continue
        # String / char literal (with escapes).
        if c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                if text[j] == "\\":
                    j += 1
                j += 1
            j = min(j + 1, n)
            tokens.append(Token("str" if c == '"' else "chr", text[i:j], line))
            line += text.count("\n", i, j)
            i = j
            continue
        # Identifier / keyword.
        if c in _ID_START:
            j = i + 1
            while j < n and text[j] in _ID_CONT:
                j += 1
            tokens.append(Token("id", text[i:j], line))
            i = j
            continue
        # Number (incl. hex, floats, digit separators; pp-numbers are fine).
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n and (text[j] in _ID_CONT or text[j] in ".'" or
                             (text[j] in "+-" and text[j - 1] in "eEpP")):
                j += 1
            tokens.append(Token("num", text[i:j], line))
            i = j
            continue
        # Punctuation, maximal munch.
        for p in _PUNCTS:
            if text.startswith(p, i):
                tokens.append(Token("punct", p, line))
                i += len(p)
                break
        else:
            tokens.append(Token("punct", c, line))
            i += 1
    return LexResult(tokens, comments, "".join(stripped))


def lex_clang(path: str, text: str) -> List[Token]:
    """libclang tokenizer -> the same normalized stream as lex_builtin.

    Only the token stream comes from libclang; comments, suppressions and
    include extraction stay on the builtin lexer (see module docstring).
    """
    import clang.cindex as cindex  # noqa: deferred, availability-gated

    tu = cindex.TranslationUnit.from_source(
        path,
        args=["-std=c++20", "-fsyntax-only"],
        unsaved_files=[(path, text)],
        options=cindex.TranslationUnit.PARSE_DETAILED_PREPROCESSING_RECORD,
    )
    out: List[Token] = []
    for tok in tu.get_tokens(extent=tu.cursor.extent):
        kind = tok.kind.name  # PUNCTUATION, KEYWORD, IDENTIFIER, LITERAL,
        # COMMENT
        spelling = tok.spelling
        line = tok.location.line
        if kind == "COMMENT":
            continue
        if kind in ("KEYWORD", "IDENTIFIER"):
            out.append(Token("id", spelling, line))
        elif kind == "LITERAL":
            if spelling.startswith(('"', 'R"', 'u"', 'U"', 'L"', 'u8"')):
                out.append(Token("str", spelling, line))
            elif spelling.startswith("'"):
                out.append(Token("chr", spelling, line))
            else:
                out.append(Token("num", spelling, line))
        else:
            out.append(Token("punct", spelling, line))
    return out


def clang_available() -> bool:
    try:
        import clang.cindex as cindex

        cindex.Config().get_cindex_library()
        return True
    except Exception:
        return False


# --------------------------------------------------------------------------
# Findings, suppressions, baseline
# --------------------------------------------------------------------------


@dataclass
class Finding:
    path: str  # repo-relative posix path
    line: int
    rule: str
    message: str
    baselined: bool = False
    suppressed: bool = False

    def render(self) -> str:
        return f"{self.path}:{self.line}: error: [{self.rule}] {self.message}"


_SUPPRESS_RE = re.compile(
    r"fc-lint:\s*allow\(\s*([A-Za-z0-9_,\s-]*?)\s*\)\s*(?::\s*(.*?))?\s*(?:\*/)?\s*$"
)


@dataclass
class Suppressions:
    # line -> set of rule ids allowed on that line.
    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    findings: List[Finding] = field(default_factory=list)  # bad-suppression


def parse_suppressions(path: str, lex: LexResult,
                       known_rules: Set[str]) -> Suppressions:
    sup = Suppressions()
    stripped_lines = lex.stripped.split("\n")
    for line_no, comment in lex.comments:
        if "fc-lint" not in comment:
            continue
        m = _SUPPRESS_RE.search(comment)
        if not m:
            sup.findings.append(Finding(
                path, line_no, "bad-suppression",
                "malformed fc-lint comment; use "
                "`// fc-lint: allow(<rule>): <rationale>`"))
            continue
        rules = [r.strip() for r in m.group(1).split(",") if r.strip()]
        rationale = (m.group(2) or "").strip()
        ok = True
        if not rules:
            sup.findings.append(Finding(
                path, line_no, "bad-suppression",
                "allow() names no rule"))
            ok = False
        for r in rules:
            if r not in known_rules:
                sup.findings.append(Finding(
                    path, line_no, "bad-suppression",
                    f"allow() names unknown rule '{r}'"))
                ok = False
        if len(rationale) < 10:
            sup.findings.append(Finding(
                path, line_no, "bad-suppression",
                "suppression requires a written rationale (>= 10 chars) "
                "after the colon: `// fc-lint: allow(<rule>): <why>`"))
            ok = False
        if not ok:
            continue
        covered = {line_no}
        # A comment alone on its line covers the next *code* line, skipping
        # blank lines and rationale-continuation comments (bounded so a
        # stray suppression cannot reach across a whole file).
        src_line = stripped_lines[line_no - 1] if line_no <= len(
            stripped_lines) else ""
        if not src_line.strip():
            for ln in range(line_no + 1, min(line_no + 6,
                                             len(stripped_lines) + 1)):
                covered.add(ln)
                if stripped_lines[ln - 1].strip():
                    break
        for ln in covered:
            sup.by_line.setdefault(ln, set()).update(rules)
    return sup


def load_baseline(path: Optional[str]) -> Dict[Tuple[str, str], int]:
    if not path:
        return {}
    with open(path, "r", encoding="utf-8") as f:
        entries = json.load(f)
    out: Dict[Tuple[str, str], int] = {}
    for e in entries:
        out[(e["file"], e["rule"])] = out.get((e["file"], e["rule"]), 0) + \
            int(e.get("count", 1))
    return out


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    counts: Dict[Tuple[str, str], int] = {}
    for f in findings:
        counts[(f.path, f.rule)] = counts.get((f.path, f.rule), 0) + 1
    entries = [{"file": k[0], "rule": k[1], "count": v}
               for k, v in sorted(counts.items())]
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(entries, fh, indent=2)
        fh.write("\n")


# --------------------------------------------------------------------------
# Scope helpers
# --------------------------------------------------------------------------


def _under(path: str, prefixes: Sequence[str]) -> bool:
    return any(path == p or path.startswith(p.rstrip("/") + "/")
               for p in prefixes)


# --------------------------------------------------------------------------
# Rule 1: status-value-unchecked
# --------------------------------------------------------------------------

_STATUSOR_NAMES = {"FcStatusOr"}
_GUARD_MEMBERS = {"ok", "has_value"}
_EVIDENCE_MEMBERS = {"ok", "status", "has_value"}


def _function_bodies(tokens: List[Token]) -> List[Tuple[int, int]]:
    """[start, end) token ranges of outermost function-like bodies.

    A `{` opens a function body when we are not already inside one and
    scanning backwards (skipping matched `{...}` groups, e.g. brace
    member-inits in a ctor-init list) hits `)` before any of `;` `{` `}`.
    This also admits namespace-scope lambdas, which is what we want.
    """
    bodies: List[Tuple[int, int]] = []
    depth = 0
    body_open_depth: Optional[int] = None
    body_start = 0
    for i, tok in enumerate(tokens):
        if tok.kind != "punct":
            continue
        if tok.text == "{":
            if body_open_depth is None and _looks_like_function_open(tokens, i):
                body_open_depth = depth
                body_start = i
            depth += 1
        elif tok.text == "}":
            depth -= 1
            if body_open_depth is not None and depth == body_open_depth:
                bodies.append((body_start, i + 1))
                body_open_depth = None
    if body_open_depth is not None:  # unbalanced file; take what we have
        bodies.append((body_start, len(tokens)))
    return bodies


def _looks_like_function_open(tokens: List[Token], at: int) -> bool:
    i = at - 1
    skipped_group = False
    seen_colon = False
    while i >= 0:
        tok = tokens[i]
        if tok.kind == "punct":
            if tok.text == ")":
                # Plain `...) {` is a body. If we skipped a brace group on
                # the way here it must have been a ctor member-init
                # (`Foo() : a_{x} {`), which always has a `:` between the
                # `)` and the braces — without one, the group we skipped
                # was a *previous definition's* body and this `{` opens a
                # class/enum/namespace, not a function.
                return seen_colon or not skipped_group
            if tok.text in (";", "{"):
                return False
            if tok.text == ":":
                seen_colon = True
            if tok.text == "}":
                # Skip a matched {...} group (brace member-init) and keep
                # scanning left.
                skipped_group = True
                depth = 1
                i -= 1
                while i >= 0 and depth:
                    if tokens[i].kind == "punct":
                        if tokens[i].text == "}":
                            depth += 1
                        elif tokens[i].text == "{":
                            depth -= 1
                    i -= 1
                continue
        elif tok.kind == "id" and tok.text in ("else", "do", "try"):
            # `else {`, `do {`, `try {` are statement blocks, not bodies —
            # but those only occur inside a function we are already in.
            return False
        i -= 1
    return False


def _collect_statusor_decls(tokens: List[Token], lo: int, hi: int) -> Set[str]:
    """Names declared with an explicit FcStatusOr<...> type in [lo, hi)."""
    names: Set[str] = set()
    i = lo
    while i < hi:
        tok = tokens[i]
        if tok.kind == "id" and tok.text in _STATUSOR_NAMES:
            j = i + 1
            if j < hi and tokens[j].kind == "punct" and tokens[j].text == "<":
                # Match template args; `>>` closes two levels.
                depth = 0
                while j < hi:
                    t = tokens[j]
                    if t.kind == "punct":
                        if t.text == "<":
                            depth += 1
                        elif t.text == ">":
                            depth -= 1
                            if depth == 0:
                                break
                        elif t.text == ">>":
                            depth -= 2
                            if depth <= 0:
                                break
                    j += 1
                j += 1
                # Optional ref/ptr qualifiers, then the declared name.
                while j < hi and tokens[j].kind == "punct" and \
                        tokens[j].text in ("&", "*", "&&"):
                    j += 1
                if j < hi and tokens[j].kind == "id":
                    nxt = tokens[j + 1] if j + 1 < hi else None
                    if nxt is not None and nxt.kind == "punct" and \
                            nxt.text in ("=", ";", ",", ")", "(", "{"):
                        names.add(tokens[j].text)
                        i = j
        i += 1
    return names


def _collect_evidence_names(tokens: List[Token], lo: int, hi: int) -> Set[str]:
    """Names used with .ok()/.status()/.has_value() — status-like evidence
    for `auto`-declared FcStatusOr variables."""
    names: Set[str] = set()
    for i in range(lo, hi - 3):
        if (tokens[i].kind == "id" and tokens[i + 1].kind == "punct" and
                tokens[i + 1].text == "." and tokens[i + 2].kind == "id" and
                tokens[i + 2].text in _EVIDENCE_MEMBERS and
                tokens[i + 3].kind == "punct" and tokens[i + 3].text == "("):
            prev = tokens[i - 1] if i > lo else None
            if prev is None or not (prev.kind == "punct" and
                                    prev.text in (".", "->", "::")):
                names.add(tokens[i].text)
    return names


def rule_status_value_unchecked(path: str, tokens: List[Token]) -> List[Finding]:
    findings: List[Finding] = []
    for lo, hi in _function_bodies(tokens):
        tracked = _collect_statusor_decls(tokens, lo, hi)
        tracked |= _collect_evidence_names(tokens, lo, hi)
        # Include decls in the parameter list / return type immediately
        # before the body (parameters are uses too).
        param_lo = max(0, lo - 64)
        tracked |= _collect_statusor_decls(tokens, param_lo, lo)
        guarded: Set[str] = set()
        i = lo
        while i < hi:
            tok = tokens[i]
            nxt = tokens[i + 1] if i + 1 < hi else None
            prv = tokens[i - 1] if i > 0 else None
            if tok.kind == "id" and tok.text in tracked and not (
                    prv is not None and prv.kind == "punct" and
                    prv.text in (".", "->", "::")):
                name = tok.text
                # Guard: name.ok() / name.has_value().
                if (nxt is not None and nxt.text == "." and i + 3 < hi and
                        tokens[i + 2].kind == "id" and
                        tokens[i + 2].text in _GUARD_MEMBERS and
                        tokens[i + 3].text == "("):
                    guarded.add(name)
                    i += 4
                    continue
                # Reassignment invalidates an earlier guard.
                if (nxt is not None and nxt.kind == "punct" and
                        nxt.text == "="):
                    guarded.discard(name)
                    i += 2
                    continue
                # Use: name.value(), name->member, *name (unary context).
                use = None
                if (nxt is not None and nxt.text == "." and i + 3 < hi and
                        tokens[i + 2].kind == "id" and
                        tokens[i + 2].text == "value" and
                        tokens[i + 3].text == "("):
                    use = f"'{name}.value()'"
                elif nxt is not None and nxt.kind == "punct" and \
                        nxt.text == "->":
                    use = f"'{name}->'"
                if prv is not None and prv.kind == "punct" and \
                        prv.text == "*" and use is None:
                    before = tokens[i - 2] if i >= 2 else None
                    if before is None or (before.kind == "punct" and
                                          before.text in
                                          ("=", "(", ",", "{", ";", "<",
                                           "return")) or \
                            (before.kind == "id" and before.text == "return"):
                        use = f"'*{name}'"
                if use is not None and name not in guarded:
                    findings.append(Finding(
                        path, tok.line, "status-value-unchecked",
                        f"{use} on FcStatusOr '{name}' with no dominating "
                        f".ok() guard in this function; add "
                        f"`if (!{name}.ok()) return {name}.status();` (or "
                        f"equivalent) before the access"))
            # Chained: <call>(...).value() — can never have been checked.
            if (tok.kind == "punct" and tok.text == ")" and nxt is not None and
                    nxt.text == "." and i + 3 < hi and
                    tokens[i + 2].kind == "id" and
                    tokens[i + 2].text == "value" and
                    tokens[i + 3].text == "("):
                # Exclude `x.value().value()`-ish? No: still unchecked.
                # Exclude the guard idiom `(x = f()).ok()` — not .value().
                findings.append(Finding(
                    path, tokens[i + 2].line, "status-value-unchecked",
                    "'.value()' directly on a call result — the status was "
                    "never checked (the PR 6 server-abort TOCTOU class); "
                    "bind the FcStatusOr to a named local and test .ok() "
                    "first"))
            i += 1
    return findings


# --------------------------------------------------------------------------
# Rule 2: no-abort-in-service
# --------------------------------------------------------------------------

_ABORT_IDS = {
    "FC_CHECK", "FC_CHECK_MSG", "FC_CHECK_EQ", "FC_CHECK_NE", "FC_CHECK_GT",
    "FC_CHECK_GE", "FC_CHECK_LT", "FC_CHECK_LE", "FC_DCHECK", "CheckFailed",
    "abort", "exit", "_Exit", "quick_exit", "terminate", "throw",
}


def rule_no_abort_in_service(path: str, tokens: List[Token]) -> List[Finding]:
    findings = []
    for i, tok in enumerate(tokens):
        if tok.kind != "id" or tok.text not in _ABORT_IDS:
            continue
        prv = tokens[i - 1] if i > 0 else None
        if prv is not None and prv.kind == "punct" and prv.text in (".", "->"):
            continue  # member named e.g. `exit` — not the libc call
        if prv is not None and prv.kind == "id" and \
                prv.text not in ("return", "else", "do"):
            continue  # `void exit();` — a declaration, not a call
        if tok.text == "throw":
            findings.append(Finding(
                path, tok.line, "no-abort-in-service",
                "'throw' in the status-returning error model; return "
                "FcStatus::Internal(...) (src/api, src/service, and "
                "src/net promise a non-aborting surface)"))
            continue
        nxt = tokens[i + 1] if i + 1 < len(tokens) else None
        if nxt is None or not (nxt.kind == "punct" and nxt.text == "("):
            continue  # mention, not a call/macro invocation
        findings.append(Finding(
            path, tok.line, "no-abort-in-service",
            f"'{tok.text}' aborts the process; src/api, src/service, and "
            f"src/net promise a status-returning error model — return a "
            f"non-ok "
            f"FcStatus instead, or suppress with a rationale naming the "
            f"invariant that makes aborting correct"))
    return findings


# --------------------------------------------------------------------------
# Rule 3: raw-mutex
# --------------------------------------------------------------------------

_RAW_MUTEX_TYPES = {
    "mutex", "timed_mutex", "recursive_mutex", "recursive_timed_mutex",
    "shared_mutex", "shared_timed_mutex", "lock_guard", "unique_lock",
    "scoped_lock", "shared_lock", "condition_variable",
    "condition_variable_any", "call_once", "once_flag",
}
_RAW_MUTEX_INCLUDES = {"mutex", "shared_mutex", "condition_variable"}


def rule_raw_mutex(path: str, tokens: List[Token],
                   includes: List[Tuple[int, str, bool]]) -> List[Finding]:
    findings = []
    for line, inc, angled in includes:
        if angled and inc in _RAW_MUTEX_INCLUDES:
            findings.append(Finding(
                path, line, "raw-mutex",
                f"#include <{inc}> outside src/common/mutex.h; use the "
                f"annotated Mutex/MutexLock/CondVar wrappers so the clang "
                f"thread-safety analysis can see every lock"))
    for i in range(len(tokens) - 2):
        if (tokens[i].kind == "id" and tokens[i].text == "std" and
                tokens[i + 1].kind == "punct" and tokens[i + 1].text == "::"
                and tokens[i + 2].kind == "id" and
                tokens[i + 2].text in _RAW_MUTEX_TYPES):
            findings.append(Finding(
                path, tokens[i].line, "raw-mutex",
                f"raw 'std::{tokens[i + 2].text}' outside src/common/mutex.h; "
                f"use the annotated wrappers (Mutex, MutexLock, CondVar) — "
                f"raw primitives are invisible to -Wthread-safety"))
    return findings


# --------------------------------------------------------------------------
# Rule 4: nondeterministic-iteration
# --------------------------------------------------------------------------

_UNORDERED_TYPES = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset",
}


def _collect_unordered_vars(tokens: List[Token]) -> Tuple[Set[str], Set[str]]:
    """(variable names, type alias names) of unordered container types."""
    type_names = set(_UNORDERED_TYPES)
    var_names: Set[str] = set()
    # Two passes so aliases declared after use still count.
    for _ in range(2):
        i = 0
        while i < len(tokens):
            tok = tokens[i]
            if tok.kind == "id" and tok.text in type_names:
                # Skip std:: qualifier handling — we matched the base name.
                j = i + 1
                if j < len(tokens) and tokens[j].kind == "punct" and \
                        tokens[j].text == "<":
                    depth = 0
                    while j < len(tokens):
                        t = tokens[j]
                        if t.kind == "punct":
                            if t.text == "<":
                                depth += 1
                            elif t.text == ">":
                                depth -= 1
                                if depth == 0:
                                    break
                            elif t.text == ">>":
                                depth -= 2
                                if depth <= 0:
                                    break
                        j += 1
                    j += 1
                while j < len(tokens) and tokens[j].kind == "punct" and \
                        tokens[j].text in ("&", "*"):
                    j += 1
                if j < len(tokens) and tokens[j].kind == "id":
                    nxt = tokens[j + 1] if j + 1 < len(tokens) else None
                    if nxt is not None and nxt.kind == "punct" and \
                            nxt.text in (";", "=", "{", "(", ",", ")"):
                        var_names.add(tokens[j].text)
                # Alias: using NAME = std::unordered_map<...>;
                if i >= 3 and tokens[i - 3].kind == "id" and \
                        tokens[i - 3].text not in ("std",):
                    pass
            if tok.kind == "id" and tok.text == "using" and \
                    i + 2 < len(tokens) and tokens[i + 1].kind == "id" and \
                    tokens[i + 2].kind == "punct" and \
                    tokens[i + 2].text == "=":
                # using X = ... unordered_map ... ;
                k = i + 3
                is_unordered = False
                while k < len(tokens) and tokens[k].text != ";":
                    if tokens[k].kind == "id" and \
                            tokens[k].text in _UNORDERED_TYPES:
                        is_unordered = True
                    k += 1
                if is_unordered:
                    type_names.add(tokens[i + 1].text)
            i += 1
    return var_names, type_names


def rule_nondeterministic_iteration(path: str,
                                    tokens: List[Token]) -> List[Finding]:
    findings = []
    var_names, _ = _collect_unordered_vars(tokens)
    n = len(tokens)
    for i, tok in enumerate(tokens):
        # Range-for whose range expression ends in a tracked variable:
        # for ( ... : <expr ending in NAME> )
        if tok.kind == "id" and tok.text == "for" and i + 1 < n and \
                tokens[i + 1].text == "(":
            depth = 0
            colon = None
            j = i + 1
            while j < n:
                t = tokens[j]
                if t.kind == "punct":
                    if t.text == "(":
                        depth += 1
                    elif t.text == ")":
                        depth -= 1
                        if depth == 0:
                            break
                    elif t.text == ":" and depth == 1 and colon is None:
                        colon = j
                j += 1
            close = j
            if colon is not None and close < n:
                last = tokens[close - 1]
                if last.kind == "id" and last.text in var_names:
                    findings.append(Finding(
                        path, tok.line, "nondeterministic-iteration",
                        f"range-for over unordered container '{last.text}': "
                        f"iteration order is nondeterministic and can leak "
                        f"into results, breaking the bit-reproducibility "
                        f"contract; iterate a sorted copy (or suppress with "
                        f"a rationale naming the order-insensitive sink)"))
        # NAME.begin() / cbegin / rbegin on a tracked variable.
        if tok.kind == "id" and tok.text in var_names and i + 3 < n and \
                tokens[i + 1].text == "." and tokens[i + 2].kind == "id" and \
                tokens[i + 2].text in ("begin", "cbegin", "rbegin") and \
                tokens[i + 3].text == "(":
            prv = tokens[i - 1] if i > 0 else None
            if prv is not None and prv.kind == "punct" and \
                    prv.text in (".", "->", "::"):
                continue
            findings.append(Finding(
                path, tok.line, "nondeterministic-iteration",
                f"iterator over unordered container '{tok.text}': iteration "
                f"order is nondeterministic and can leak into results; "
                f"iterate a sorted copy (or suppress with a rationale "
                f"naming the order-insensitive sink)"))
    return findings


# --------------------------------------------------------------------------
# Rule 5: banned-entropy
# --------------------------------------------------------------------------

_ENTROPY_TYPES = {
    "random_device", "mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
    "default_random_engine", "ranlux24", "ranlux48", "knuth_b",
    "system_clock", "steady_clock", "high_resolution_clock",
}
_ENTROPY_CALLS = {
    "rand", "srand", "rand_r", "drand48", "lrand48", "mrand48", "srand48",
    "random", "srandom", "time", "clock", "gettimeofday", "clock_gettime",
    "timespec_get",
}
_ENTROPY_INCLUDES = {"random"}


def rule_banned_entropy(path: str, tokens: List[Token],
                        includes: List[Tuple[int, str, bool]]) -> List[Finding]:
    findings = []
    for line, inc, angled in includes:
        if angled and inc in _ENTROPY_INCLUDES:
            findings.append(Finding(
                path, line, "banned-entropy",
                "#include <random> in algorithm code; all randomness must "
                "flow through the seeded Rng (src/common/rng.h) so results "
                "are reproducible from a single seed"))
    n = len(tokens)
    for i, tok in enumerate(tokens):
        if tok.kind != "id":
            continue
        prv = tokens[i - 1] if i > 0 else None
        member = prv is not None and prv.kind == "punct" and \
            prv.text in (".", "->")
        if tok.text in _ENTROPY_TYPES and not member:
            what = "wall-clock source" if "clock" in tok.text else \
                "entropy source"
            findings.append(Finding(
                path, tok.line, "banned-entropy",
                f"'{tok.text}' is a nondeterministic {what}; use the seeded "
                f"Rng (src/common/rng.h) for randomness and Timer "
                f"(src/common/timer.h) for diagnostics-only timing"))
            continue
        if tok.text in _ENTROPY_CALLS and not member and i + 1 < n and \
                tokens[i + 1].kind == "punct" and tokens[i + 1].text == "(":
            # `now(` reached via Clock::now is covered by the type names
            # above; plain calls like time(nullptr), rand() land here.
            findings.append(Finding(
                path, tok.line, "banned-entropy",
                f"call to '{tok.text}()' in algorithm code; randomness must "
                f"come from the seeded Rng and timing from Timer "
                f"(diagnostics/bench allowlist only)"))
        if tok.text == "now" and prv is not None and prv.kind == "punct" and \
                prv.text == "::" and i + 1 < n and \
                tokens[i + 1].text == "(":
            findings.append(Finding(
                path, tok.line, "banned-entropy",
                "'::now()' reads the wall clock; timing belongs in Timer "
                "(src/common/timer.h) and the diagnostics/bench allowlist"))
    return findings


# --------------------------------------------------------------------------
# Rule 6: umbrella-include
# --------------------------------------------------------------------------

# The per-method compression headers PR 4 made internal: bench/ and
# examples/ must reach every coreset method through the facade.
_METHOD_HEADERS = re.compile(
    r"^src/(core/(uniform_sampling|lightweight_coreset|welterweight_coreset|"
    r"sensitivity_sampling|fast_coreset|group_sampling)|"
    r"streaming/(bico|streamkm))\.h$")


def rule_umbrella_include(path: str,
                          includes: List[Tuple[int, str, bool]]) -> List[Finding]:
    findings = []
    for line, inc, angled in includes:
        if not angled and _METHOD_HEADERS.match(inc):
            findings.append(Finding(
                path, line, "umbrella-include",
                f'#include "{inc}" is a per-method compression header, '
                f"internal since PR 4; include \"src/api/fastcoreset.h\" "
                f"and go through api::Build / the registry instead"))
    return findings


# --------------------------------------------------------------------------
# Mini-TOML (the dependency-free subset the two config files use)
# --------------------------------------------------------------------------
#
# Supports [table.paths], [[array.of.tables]], and `key = value` with
# string / integer / boolean / single-line-array values — exactly what
# layers.toml and lock_hierarchy.toml need, with line numbers preserved
# so config errors are findings pointing at the offending table.


class TomlError(Exception):
    def __init__(self, line: int, msg: str):
        super().__init__(msg)
        self.line = line
        self.msg = msg


def _strip_toml_comment(line: str) -> str:
    out = []
    in_str = False
    for ch in line:
        if ch == '"':
            in_str = not in_str
        if ch == "#" and not in_str:
            break
        out.append(ch)
    return "".join(out)


def _toml_value(raw: str, line_no: int):
    raw = raw.strip()
    if raw.startswith("["):
        if not raw.endswith("]"):
            raise TomlError(line_no, "arrays must be single-line")
        inner = raw[1:-1].strip()
        if not inner:
            return []
        parts, depth, in_str, cur = [], 0, False, []
        for ch in inner:
            if ch == '"':
                in_str = not in_str
            if not in_str:
                if ch == "[":
                    depth += 1
                elif ch == "]":
                    depth -= 1
                elif ch == "," and depth == 0:
                    parts.append("".join(cur))
                    cur = []
                    continue
            cur.append(ch)
        parts.append("".join(cur))
        return [_toml_value(p, line_no) for p in parts]
    if raw.startswith('"') and raw.endswith('"') and len(raw) >= 2:
        body = raw[1:-1]
        if '"' in body or "\\" in body:
            raise TomlError(line_no, "escapes in strings are unsupported")
        return body
    if raw in ("true", "false"):
        return raw == "true"
    if re.fullmatch(r"-?\d+", raw):
        return int(raw)
    raise TomlError(line_no, f"unsupported value {raw!r}")


def parse_mini_toml(text: str) -> Dict[str, object]:
    """Parses the supported TOML subset; tables carry '__line__'."""
    root: Dict[str, object] = {}
    current: Dict[str, object] = root
    for line_no, raw in enumerate(text.split("\n"), start=1):
        line = _strip_toml_comment(raw).strip()
        if not line:
            continue
        if line.startswith("[["):
            if not line.endswith("]]"):
                raise TomlError(line_no, "malformed [[table]] header")
            parts = line[2:-2].strip().split(".")
            target = root
            for p in parts[:-1]:
                target = target.setdefault(p, {})  # type: ignore[assignment]
                if not isinstance(target, dict):
                    raise TomlError(line_no, "table path collides with a value")
            arr = target.setdefault(parts[-1], [])
            if not isinstance(arr, list):
                raise TomlError(line_no, "[[table]] collides with a value")
            current = {"__line__": line_no}
            arr.append(current)
        elif line.startswith("["):
            if not line.endswith("]"):
                raise TomlError(line_no, "malformed [table] header")
            parts = line[1:-1].strip().split(".")
            target = root
            for p in parts[:-1]:
                target = target.setdefault(p, {})  # type: ignore[assignment]
                if not isinstance(target, dict):
                    raise TomlError(line_no, "table path collides with a value")
            if parts[-1] in target:
                raise TomlError(line_no, f"duplicate table [{'.'.join(parts)}]")
            current = {"__line__": line_no}
            target[parts[-1]] = current
        else:
            m = re.match(r"^([A-Za-z0-9_-]+)\s*=\s*(.+)$", line)
            if not m:
                raise TomlError(line_no, f"cannot parse line {line!r}")
            current[m.group(1)] = _toml_value(m.group(2), line_no)
    return root


# --------------------------------------------------------------------------
# Project model: module-layering DAG + lock hierarchy
# --------------------------------------------------------------------------


@dataclass
class LayerConfig:
    display: str  # path shown in findings
    modules: Dict[str, List[str]] = field(default_factory=dict)
    lines: Dict[str, int] = field(default_factory=dict)
    findings: List[Finding] = field(default_factory=list)


def load_layer_config(path: str, display: str) -> LayerConfig:
    cfg = LayerConfig(display)
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = parse_mini_toml(f.read())
    except OSError as e:
        cfg.findings.append(Finding(display, 1, "layering-violation",
                                    f"cannot read layers config: {e}"))
        return cfg
    except TomlError as e:
        cfg.findings.append(Finding(display, e.line, "layering-violation",
                                    f"layers config parse error: {e.msg}"))
        return cfg
    modules = data.get("modules")
    if not isinstance(modules, dict) or not modules:
        cfg.findings.append(Finding(
            display, 1, "layering-violation",
            "layers config declares no [modules.<name>] tables"))
        return cfg
    for name, tbl in modules.items():
        if not isinstance(tbl, dict):
            cfg.findings.append(Finding(
                display, 1, "layering-violation",
                f"[modules.{name}] is not a table"))
            continue
        line = int(tbl.get("__line__", 1))  # type: ignore[arg-type]
        deps = tbl.get("deps")
        if not isinstance(deps, list) or \
                not all(isinstance(d, str) for d in deps):
            cfg.findings.append(Finding(
                display, line, "layering-violation",
                f"[modules.{name}] needs `deps = [\"...\"]`"))
            deps = []
        cfg.modules[name] = list(deps)  # type: ignore[arg-type]
        cfg.lines[name] = line
    for name in sorted(cfg.modules):
        for dep in cfg.modules[name]:
            if dep == name:
                cfg.findings.append(Finding(
                    display, cfg.lines[name], "layering-violation",
                    f"[modules.{name}] lists itself as a dep"))
            elif dep not in cfg.modules:
                cfg.findings.append(Finding(
                    display, cfg.lines[name], "layering-violation",
                    f"[modules.{name}] dep '{dep}' is not a declared module"))
    # The declared graph must itself be a DAG: a cycle here would make
    # "upward edge" meaningless.
    for cycle in _find_cycles(cfg.modules):
        cfg.findings.append(Finding(
            display, cfg.lines.get(cycle[0], 1), "layering-violation",
            "declared module graph has a cycle: " + " -> ".join(cycle)))
    return cfg


def _find_cycles(graph: Dict[str, List[str]]) -> List[List[str]]:
    """Distinct back-edge cycles of `graph` (node -> successors)."""
    cycles: List[List[str]] = []
    state: Dict[str, int] = {}  # 0/absent = new, 1 = on stack, 2 = done

    def dfs(node: str, stack: List[str]) -> None:
        state[node] = 1
        for succ in graph.get(node, []):
            if succ not in graph:
                continue
            if state.get(succ) == 1:
                at = stack.index(succ)
                cycles.append(stack[at:] + [succ])
            elif state.get(succ, 0) == 0:
                dfs(succ, stack + [succ])
        state[node] = 2

    for start in sorted(graph):
        if state.get(start, 0) == 0:
            dfs(start, [start])
    return cycles


@dataclass
class LockSite:
    name: str
    rank: int
    constant: str
    member: str
    files: List[str]
    line: int


@dataclass
class LockHierarchy:
    display: str
    sites: List[LockSite] = field(default_factory=list)
    findings: List[Finding] = field(default_factory=list)

    def site_for_decl(self, member: str, path: str) -> Optional[LockSite]:
        for site in self.sites:
            if site.member == member and path in site.files:
                return site
        return None

    def rank_of_member(self, member: str,
                       path: str) -> Optional[Tuple[int, str]]:
        """Rank for an acquisition of `member` seen in `path`: an exact
        file match wins; otherwise a globally unique member name; else
        unknown (None) and the acquisition is not order-checked."""
        site = self.site_for_decl(member, path)
        if site is not None:
            return site.rank, site.name
        matches = [s for s in self.sites if s.member == member]
        if len(matches) == 1:
            return matches[0].rank, matches[0].name
        return None


_LOCK_REQUIRED_KEYS = ("name", "rank", "constant", "member", "files")


def load_lock_hierarchy(path: str, display: str) -> LockHierarchy:
    hier = LockHierarchy(display)
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = parse_mini_toml(f.read())
    except OSError as e:
        hier.findings.append(Finding(display, 1, "lock-order",
                                     f"cannot read lock hierarchy: {e}"))
        return hier
    except TomlError as e:
        hier.findings.append(Finding(display, e.line, "lock-order",
                                     f"lock hierarchy parse error: {e.msg}"))
        return hier
    entries = data.get("lock")
    if not isinstance(entries, list) or not entries:
        hier.findings.append(Finding(
            display, 1, "lock-order",
            "lock hierarchy declares no [[lock]] entries"))
        return hier
    seen_names: Set[str] = set()
    seen_ranks: Dict[int, str] = {}
    for tbl in entries:
        line = int(tbl.get("__line__", 1))
        missing = [k for k in _LOCK_REQUIRED_KEYS if k not in tbl]
        if missing:
            hier.findings.append(Finding(
                display, line, "lock-order",
                f"[[lock]] entry is missing {', '.join(missing)}"))
            continue
        name, rank = tbl["name"], tbl["rank"]
        constant, member, files = tbl["constant"], tbl["member"], tbl["files"]
        if not isinstance(rank, int) or rank <= 0:
            hier.findings.append(Finding(
                display, line, "lock-order",
                f"[[lock]] '{name}' rank must be a positive integer "
                f"(0 is the unranked sentinel)"))
            continue
        if not isinstance(files, list) or \
                not all(isinstance(x, str) for x in files):
            hier.findings.append(Finding(
                display, line, "lock-order",
                f"[[lock]] '{name}' needs `files = [\"...\"]`"))
            continue
        if name in seen_names:
            hier.findings.append(Finding(
                display, line, "lock-order",
                f"duplicate [[lock]] name '{name}'"))
            continue
        if rank in seen_ranks:
            hier.findings.append(Finding(
                display, line, "lock-order",
                f"[[lock]] '{name}' reuses rank {rank} of "
                f"'{seen_ranks[rank]}' — ranks are a total order"))
            continue
        seen_names.add(name)
        seen_ranks[rank] = str(name)
        hier.sites.append(LockSite(str(name), rank, str(constant),
                                   str(member), list(files), line))
    return hier


@dataclass
class ProjectContext:
    """Cross-file state threaded through a lint run: the two configs and
    the observed module include graph (for --dot-out and cycle checks)."""
    layers: LayerConfig
    locks: LockHierarchy
    # (from_module, to_module) -> (example file, line)
    module_edges: Dict[Tuple[str, str], Tuple[str, int]] = \
        field(default_factory=dict)

    def config_findings(self) -> List[Finding]:
        return list(self.layers.findings) + list(self.locks.findings)


def make_context(layers_path: str, locks_path: str,
                 layers_display: Optional[str] = None,
                 locks_display: Optional[str] = None) -> ProjectContext:
    return ProjectContext(
        load_layer_config(layers_path,
                          layers_display or layers_path.replace(os.sep, "/")),
        load_lock_hierarchy(locks_path,
                            locks_display or locks_path.replace(os.sep, "/")))


def _module_of(path: str) -> Optional[str]:
    parts = path.split("/")
    if len(parts) >= 3 and parts[0] == "src":
        return parts[1]
    return None


def record_module_edges(path: str, includes: List[Tuple[int, str, bool]],
                        ctx: "ProjectContext") -> None:
    mod = _module_of(path)
    if mod is None:
        return
    for line, inc, angled in includes:
        if angled or not inc.startswith("src/"):
            continue
        parts = inc.split("/")
        if len(parts) < 3:
            continue
        target = parts[1]
        if target != mod and (mod, target) not in ctx.module_edges:
            ctx.module_edges[(mod, target)] = (path, line)


# --------------------------------------------------------------------------
# Rule 7: layering-violation
# --------------------------------------------------------------------------


def rule_layering_violation(path: str,
                            includes: List[Tuple[int, str, bool]],
                            ctx: "ProjectContext") -> List[Finding]:
    findings: List[Finding] = []
    mod = _module_of(path)
    declared = ctx.layers.modules
    if mod is None or not declared:
        return findings
    if mod not in declared:
        findings.append(Finding(
            path, 1, "layering-violation",
            f"module 'src/{mod}' is not declared in {ctx.layers.display}; "
            f"add a [modules.{mod}] table with its allowed deps"))
        return findings
    allowed = declared[mod]
    for line, inc, angled in includes:
        if angled or not inc.startswith("src/"):
            continue
        parts = inc.split("/")
        if len(parts) < 3:
            continue
        target = parts[1]
        if target == mod:
            continue
        if target not in declared:
            findings.append(Finding(
                path, line, "layering-violation",
                f"include of 'src/{target}/...' but '{target}' is not a "
                f"declared module in {ctx.layers.display}"))
        elif target not in allowed:
            findings.append(Finding(
                path, line, "layering-violation",
                f"layering violation: src/{mod} may not include "
                f"src/{target} (declared deps of '{mod}': "
                f"{', '.join(allowed) if allowed else 'none'}; adding the "
                f"edge is an architecture decision — see "
                f"{ctx.layers.display})"))
    return findings


def write_module_dot(dot_path: str, ctx: "ProjectContext") -> List[List[str]]:
    """Writes the observed module graph as graphviz; returns any cycles
    in the ACTUAL graph (the caller fails the run on them)."""
    declared = ctx.layers.modules
    edges = sorted(ctx.module_edges)
    nodes = sorted(set(declared) |
                   {a for a, _ in edges} | {b for _, b in edges})
    lines = [
        "// Actual src/ module include graph, emitted by fc_lint.py "
        "--dot-out.",
        "// Red edges violate tools/lint/layers.toml; the CI deps-graph "
        "step renders and uploads this.",
        "digraph fc_modules {",
        "  rankdir = \"BT\";",
        "  node [shape=box, fontname=\"Helvetica\"];",
    ]
    for n in nodes:
        lines.append(f"  \"{n}\";")
    for a, b in edges:
        src_file, src_line = ctx.module_edges[(a, b)]
        ok = a in declared and b in declared.get(a, [])
        attrs = "" if ok or not declared else \
            f" [color=red, penwidth=2, label=\"{src_file}:{src_line}\"]"
        lines.append(f"  \"{a}\" -> \"{b}\"{attrs};")
    lines.append("}")
    with open(dot_path, "w", encoding="utf-8") as f:
        f.write("\n".join(lines) + "\n")
    actual: Dict[str, List[str]] = {n: [] for n in nodes}
    for a, b in edges:
        actual[a].append(b)
    return _find_cycles(actual)


# --------------------------------------------------------------------------
# Rule 8: lock-order
# --------------------------------------------------------------------------

_LOCK_ATTR_MACROS = {
    "FC_ACQUIRED_AFTER", "FC_ACQUIRED_BEFORE", "FC_GUARDED_BY",
    "FC_PT_GUARDED_BY",
}


def _match_group(tokens: List[Token], at: int, open_t: str,
                 close_t: str) -> int:
    """`at` indexes the opening token; returns the matching close index
    (or len(tokens) on imbalance)."""
    depth = 0
    i = at
    while i < len(tokens):
        t = tokens[i]
        if t.kind == "punct":
            if t.text == open_t:
                depth += 1
            elif t.text == close_t:
                depth -= 1
                if depth == 0:
                    return i
        i += 1
    return len(tokens)


def rule_lock_order(path: str, tokens: List[Token],
                    ctx: "ProjectContext") -> List[Finding]:
    findings: List[Finding] = []
    hier = ctx.locks
    n = len(tokens)

    # Pass A: every fc::Mutex declaration must carry a rank that agrees
    # with the hierarchy file. (Skipped when the hierarchy failed to
    # load — its own config findings gate the run instead.)
    i = 0
    while i < n and hier.sites:
        tok = tokens[i]
        if not (tok.kind == "id" and tok.text == "Mutex"):
            i += 1
            continue
        prv = tokens[i - 1] if i > 0 else None
        if prv is not None and (
                (prv.kind == "punct" and prv.text in ("::", ".", "->", "<"))
                or (prv.kind == "id" and prv.text in
                    ("class", "struct", "friend", "enum", "using"))):
            i += 1
            continue
        j = i + 1
        if j >= n or tokens[j].kind != "id":
            i += 1
            continue
        name_tok = tokens[j]
        j += 1
        while j + 1 < n and tokens[j].kind == "id" and \
                tokens[j].text in _LOCK_ATTR_MACROS and \
                tokens[j + 1].kind == "punct" and tokens[j + 1].text == "(":
            j = _match_group(tokens, j + 1, "(", ")") + 1
        if j >= n:
            break
        t = tokens[j]
        if t.kind == "punct" and t.text == ";":
            findings.append(Finding(
                path, name_tok.line, "lock-order",
                f"unranked Mutex '{name_tok.text}': long-lived mutexes "
                f"declare their tier (`Mutex {name_tok.text}"
                f"{{lock_rank::k...}};`) and an entry in {hier.display} "
                f"so lock-order can check acquisitions against it"))
            i = j
            continue
        if t.kind == "punct" and t.text in ("{", "("):
            close = _match_group(tokens, j, t.text,
                                 "}" if t.text == "{" else ")")
            init_texts = {tk.text for tk in tokens[j:close + 1]}
            site = hier.site_for_decl(name_tok.text, path)
            if site is None:
                findings.append(Finding(
                    path, name_tok.line, "lock-order",
                    f"ranked Mutex '{name_tok.text}' has no [[lock]] entry "
                    f"for {path} in {hier.display}"))
            elif site.constant not in init_texts:
                findings.append(Finding(
                    path, name_tok.line, "lock-order",
                    f"Mutex '{name_tok.text}' must be initialized with "
                    f"lock_rank::{site.constant} (rank {site.rank}) per "
                    f"{hier.display}"))
            i = close if close > i else j
            continue
        i = j

    # Pass B: lexical acquisition order per function body. Held locks
    # come from MutexLock RAII scopes, manual Lock()/Unlock() pairs, and
    # the FC_REQUIRES context of the enclosing signature; acquiring a
    # rank <= any held rank is an inversion.
    for lo, hi in _function_bodies(tokens):
        # (scope depth at acquisition, lock expr, rank, site name);
        # depth -1 = held for the whole body (FC_REQUIRES).
        held: List[Tuple[int, str, Optional[int], Optional[str]]] = []

        def acquire(lock_name: Optional[str], depth: int, line: int) -> None:
            resolved = hier.rank_of_member(lock_name, path) \
                if lock_name else None
            rank, site_name = resolved if resolved else (None, None)
            if rank is not None:
                for _, held_lock, held_rank, held_site in held:
                    if held_rank is not None and rank <= held_rank:
                        findings.append(Finding(
                            path, line, "lock-order",
                            f"lock-order inversion: acquiring "
                            f"'{lock_name}' (rank {rank}, {site_name}) "
                            f"while holding '{held_lock}' (rank "
                            f"{held_rank}, {held_site}); lower ranks are "
                            f"outer — see {hier.display}"))
            held.append((depth, lock_name or "?", rank, site_name))

        def release(lock_name: str) -> None:
            for k in range(len(held) - 1, -1, -1):
                if held[k][1] == lock_name:
                    del held[k]
                    return

        # Seed from FC_REQUIRES between the previous statement boundary
        # and the body's opening brace.
        sig_lo = 0
        k = lo - 1
        while k >= 0:
            if tokens[k].kind == "punct" and tokens[k].text in (";", "}",
                                                               "{"):
                sig_lo = k + 1
                break
            k -= 1
        k = sig_lo
        while k < lo:
            if tokens[k].kind == "id" and \
                    tokens[k].text in ("FC_REQUIRES",
                                       "FC_EXCLUSIVE_LOCKS_REQUIRED") and \
                    k + 1 < lo and tokens[k + 1].text == "(":
                close = _match_group(tokens, k + 1, "(", ")")
                for tk in tokens[k + 2:min(close, lo)]:
                    if tk.kind == "id":
                        resolved = hier.rank_of_member(tk.text, path)
                        if resolved is not None:
                            held.append((-1, tk.text, resolved[0],
                                         resolved[1]))
                k = close
            k += 1

        depth = 0
        idx = lo
        while idx < hi:
            t = tokens[idx]
            if t.kind == "punct":
                if t.text == "{":
                    depth += 1
                elif t.text == "}":
                    depth -= 1
                    held[:] = [h for h in held if h[0] <= depth]
                idx += 1
                continue
            if t.kind == "id" and t.text == "MutexLock" and idx + 2 < hi \
                    and tokens[idx + 1].kind == "id" and \
                    tokens[idx + 2].kind == "punct" and \
                    tokens[idx + 2].text in ("(", "{"):
                open_t = tokens[idx + 2].text
                close = _match_group(tokens, idx + 2, open_t,
                                     ")" if open_t == "(" else "}")
                arg_ids = [tk.text for tk in tokens[idx + 3:close]
                           if tk.kind == "id"]
                acquire(arg_ids[-1] if arg_ids else None, depth, t.line)
                idx = close + 1
                continue
            if t.kind == "id" and idx + 3 < hi and \
                    tokens[idx + 1].kind == "punct" and \
                    tokens[idx + 1].text == "." and \
                    tokens[idx + 2].kind == "id" and \
                    tokens[idx + 2].text in ("Lock", "Unlock") and \
                    tokens[idx + 3].text == "(":
                if tokens[idx + 2].text == "Lock":
                    acquire(t.text, depth, t.line)
                else:
                    release(t.text)
                idx += 4
                continue
            idx += 1
    return findings


# --------------------------------------------------------------------------
# Rule 9: determinism-taint
# --------------------------------------------------------------------------

# Sources: expressions whose value depends on worker count or wall clock.
_TAINT_SOURCE_CALLS = {
    "GetNumThreads", "ThreadPoolWorkerCount", "hardware_concurrency",
}
_TAINT_ENV_CALLS = {"EnvInt", "EnvDouble", "getenv", "secure_getenv"}
_TIMER_READS = {"Seconds", "Millis"}

# Sinks. Chunk/shard planning is first-argument-only: the planned extent
# must be a function of n alone (trailing arguments are bodies/options
# that may legitimately capture budgets for diagnostics).
_TAINT_CHUNK_SINKS = {
    "ParallelFor", "ParallelForChunks", "ParallelReduce",
    "ParallelChunkCount", "PlanChunks", "PlanShards", "EffectiveShardCount",
}
_TAINT_SEED_SINKS = {"DeriveBuildSeed", "SplitMix64", "Rng"}
_TAINT_RESULT_TYPES = {"Coreset", "BuildResult", "BuildResponse"}


def _collect_typed_vars(tokens: List[Token],
                        type_names: Set[str]) -> Dict[str, str]:
    """NAME -> type for `Type [&*] NAME ...` declarations and params."""
    out: Dict[str, str] = {}
    for i in range(len(tokens) - 2):
        t = tokens[i]
        if t.kind != "id" or t.text not in type_names:
            continue
        prv = tokens[i - 1] if i > 0 else None
        if prv is not None and prv.kind == "punct" and \
                prv.text in ("::", ".", "->", "<"):
            continue
        j = i + 1
        while j < len(tokens) and tokens[j].kind == "punct" and \
                tokens[j].text in ("&", "*"):
            j += 1
        if j + 1 >= len(tokens) or tokens[j].kind != "id":
            continue
        nxt = tokens[j + 1]
        if nxt.kind == "punct" and nxt.text in (";", "=", "{", "(", ",",
                                                ")"):
            out[tokens[j].text] = t.text
    return out


def _span_has_taint(tokens: List[Token], lo: int, hi: int,
                    timer_vars: Set[str], tainted: Set[str]) -> bool:
    """True when [lo, hi) contains a taint source or a tainted name."""
    k = lo
    while k < hi:
        t = tokens[k]
        if t.kind == "id":
            prv = tokens[k - 1] if k > lo else None
            is_member = prv is not None and prv.kind == "punct" and \
                prv.text in (".", "->")
            nxt = tokens[k + 1] if k + 1 < hi else None
            calls = nxt is not None and nxt.kind == "punct" and \
                nxt.text == "("
            if t.text in tainted and not is_member:
                return True
            if t.text in _TAINT_SOURCE_CALLS and calls:
                return True
            if t.text in _TAINT_ENV_CALLS and calls and not is_member:
                close = _match_group(tokens, k + 1, "(", ")")
                if any(tk.kind == "str" and "FC_THREADS" in tk.text
                       for tk in tokens[k + 2:min(close, hi)]):
                    return True
            if t.text in timer_vars and not is_member and k + 3 < hi and \
                    tokens[k + 1].text == "." and \
                    tokens[k + 2].kind == "id" and \
                    tokens[k + 2].text in _TIMER_READS and \
                    tokens[k + 3].text == "(":
                return True
        k += 1
    return False


def _statements(tokens: List[Token], lo: int,
                hi: int) -> List[Tuple[int, int]]:
    """Statement-ish token spans of a body: split on `;` outside parens
    and on every brace (so block contents are their own spans)."""
    out: List[Tuple[int, int]] = []
    start = lo + 1
    pdepth = 0
    for k in range(lo + 1, hi):
        t = tokens[k]
        if t.kind != "punct":
            continue
        if t.text in ("(", "["):
            pdepth += 1
        elif t.text in (")", "]"):
            pdepth = max(0, pdepth - 1)
        elif (t.text == ";" and pdepth == 0) or t.text in ("{", "}"):
            if k > start:
                out.append((start, k))
            start = k + 1
            pdepth = 0
    if hi > start:
        out.append((start, hi))
    return out


_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=",
               ">>="}


def _find_assign(tokens: List[Token], s: int, e: int) -> Optional[int]:
    pdepth = 0
    for k in range(s, e):
        t = tokens[k]
        if t.kind != "punct":
            continue
        if t.text in ("(", "["):
            pdepth += 1
        elif t.text in (")", "]"):
            pdepth -= 1
        elif pdepth == 0 and t.text in _ASSIGN_OPS:
            return k
    return None


def _lhs_chain(tokens: List[Token], s: int,
               eq: int) -> Optional[Tuple[str, List[str]]]:
    """(base variable, member path) of the lvalue ending at `eq`."""
    k = eq - 1
    parts: List[str] = []
    while k >= s:
        t = tokens[k]
        if t.kind == "punct" and t.text == "]":
            depth = 1
            k -= 1
            while k >= s and depth:
                if tokens[k].text == "]":
                    depth += 1
                elif tokens[k].text == "[":
                    depth -= 1
                k -= 1
            continue
        if t.kind == "id":
            parts.append(t.text)
            k -= 1
            if k >= s and tokens[k].kind == "punct" and \
                    tokens[k].text in (".", "->"):
                k -= 1
                continue
            break
        return None
    if not parts:
        return None
    parts.reverse()
    return parts[0], parts[1:]


def _first_arg_end(tokens: List[Token], open_idx: int, close: int) -> int:
    pdepth = 0
    for k in range(open_idx, close):
        t = tokens[k]
        if t.kind != "punct":
            continue
        if t.text in ("(", "[", "{"):
            pdepth += 1
        elif t.text in (")", "]", "}"):
            pdepth -= 1
        elif t.text == "," and pdepth == 1:
            return k
    return close


def rule_determinism_taint(path: str,
                           tokens: List[Token]) -> List[Finding]:
    findings: List[Finding] = []
    timer_vars = set(_collect_typed_vars(tokens, {"Timer"}))
    result_vars = _collect_typed_vars(tokens, _TAINT_RESULT_TYPES)
    for lo, hi in _function_bodies(tokens):
        spans = _statements(tokens, lo, hi)
        tainted: Set[str] = set()
        # Fixpoint: a variable assigned from a source (or from another
        # tainted variable) is tainted. Bounded — each pass only adds.
        for _ in range(8):
            changed = False
            for s, e in spans:
                eq = _find_assign(tokens, s, e)
                if eq is None:
                    continue
                if not _span_has_taint(tokens, eq + 1, e, timer_vars,
                                       tainted):
                    continue
                chain = _lhs_chain(tokens, s, eq)
                if chain is None:
                    continue
                base, members = chain
                if not members and base not in tainted:
                    tainted.add(base)
                    changed = True
            if not changed:
                break
        # Sink 1: member assignments — sampler seeds anywhere, and
        # non-diagnostics fields of result types.
        for s, e in spans:
            eq = _find_assign(tokens, s, e)
            if eq is None:
                continue
            if not _span_has_taint(tokens, eq + 1, e, timer_vars, tainted):
                continue
            chain = _lhs_chain(tokens, s, eq)
            if chain is None:
                continue
            base, members = chain
            if not members:
                continue
            dotted = base + "." + ".".join(members)
            if members[-1] == "seed":
                findings.append(Finding(
                    path, tokens[eq].line, "determinism-taint",
                    f"thread-count/timer-derived value assigned into "
                    f"sampler seed '{dotted}' — results must be a "
                    f"function of (data, spec, seed) alone"))
            elif base in result_vars and members[0] != "diagnostics":
                findings.append(Finding(
                    path, tokens[eq].line, "determinism-taint",
                    f"thread-count/timer-derived value flows into "
                    f"{result_vars[base]} field '{dotted}'; only "
                    f"diagnostics may depend on scheduling — results are "
                    f"bit-identical at any FC_THREADS"))
        # Sink 2: call-shaped sinks.
        k = lo
        while k < hi:
            t = tokens[k]
            if t.kind == "id" and k + 1 < hi and \
                    tokens[k + 1].kind == "punct" and \
                    tokens[k + 1].text == "(" and \
                    t.text in (_TAINT_CHUNK_SINKS | _TAINT_SEED_SINKS):
                close = _match_group(tokens, k + 1, "(", ")")
                if t.text in _TAINT_CHUNK_SINKS:
                    arg_end = _first_arg_end(tokens, k + 1, close)
                    if _span_has_taint(tokens, k + 2, arg_end, timer_vars,
                                       tainted):
                        findings.append(Finding(
                            path, t.line, "determinism-taint",
                            f"thread-count/timer-derived value flows into "
                            f"the chunk/shard plan via '{t.text}(...)' — "
                            f"the plan must depend on n alone (the "
                            f"bit-reproducibility contract)"))
                elif _span_has_taint(tokens, k + 2, close, timer_vars,
                                     tainted):
                    findings.append(Finding(
                        path, t.line, "determinism-taint",
                        f"thread-count/timer-derived value flows into "
                        f"seed derivation '{t.text}(...)' — seeds come "
                        f"from (spec seed, shard index) alone"))
                k = close + 1
                continue
            # Rng NAME(expr) / Rng NAME{expr} declarations.
            if t.kind == "id" and t.text == "Rng" and k + 2 < hi and \
                    tokens[k + 1].kind == "id" and \
                    tokens[k + 2].kind == "punct" and \
                    tokens[k + 2].text in ("(", "{"):
                open_t = tokens[k + 2].text
                close = _match_group(tokens, k + 2, open_t,
                                     ")" if open_t == "(" else "}")
                if _span_has_taint(tokens, k + 3, close, timer_vars,
                                   tainted):
                    findings.append(Finding(
                        path, t.line, "determinism-taint",
                        f"Rng '{tokens[k + 1].text}' seeded from a "
                        f"thread-count/timer-derived value — sampler "
                        f"state must derive from the spec seed alone"))
                k = close + 1
                continue
            k += 1
    return findings


# --------------------------------------------------------------------------
# --fix: mechanical rewrites for the include-shaped rules
# --------------------------------------------------------------------------


def apply_fixes(rel_path: str, text: str) -> Tuple[str, int]:
    """Rewrites umbrella-include / raw-mutex include findings in `text`:
    the first banned include becomes the blessed one (unless it is
    already present), later ones are deleted. Suppressed lines are left
    alone. Idempotent. Returns (new text, fixes applied)."""
    lex = lex_builtin(text)
    includes = extract_includes(lex.stripped)
    sup = parse_suppressions(rel_path, lex, KNOWN_RULES)
    lines: List[Optional[str]] = list(text.split("\n"))
    fixes = 0
    plans = [
        ("umbrella-include", "src/api/fastcoreset.h",
         [line for line, inc, angled in includes
          if not angled and _METHOD_HEADERS.match(inc)]),
        ("raw-mutex", "src/common/mutex.h",
         [line for line, inc, angled in includes
          if angled and inc in _RAW_MUTEX_INCLUDES]),
    ]
    for rule, target, bad_lines in plans:
        if rule not in RULES or not RULES[rule]["scope"](rel_path):  # type: ignore[operator]
            continue
        has_target = any(not angled and inc == target
                         for _, inc, angled in includes)
        for ln in bad_lines:
            if rule in sup.by_line.get(ln, set()):
                continue
            if has_target:
                lines[ln - 1] = None
            else:
                lines[ln - 1] = f'#include "{target}"'
                has_target = True
            fixes += 1
    if not fixes:
        return text, 0
    return "\n".join(l for l in lines if l is not None), fixes


# --------------------------------------------------------------------------
# Rule table: id -> (scope predicate, runner docstring)
# --------------------------------------------------------------------------


def _scope_status_value(p: str) -> bool:
    return (_under(p, ["src/api", "src/service", "src/net"]) or
            (_under(p, ["tools"]) and not _under(p, ["tools/lint"])))


def _scope_no_abort(p: str) -> bool:
    return _under(p, ["src/api", "src/service", "src/net"])


def _scope_raw_mutex(p: str) -> bool:
    return _under(p, ["src", "tools", "bench", "examples"]) and \
        p != "src/common/mutex.h" and not _under(p, ["tools/lint"])


def _scope_nondet_iter(p: str) -> bool:
    return _under(p, ["src", "tools"]) and not _under(p, ["tools/lint"])


def _scope_entropy(p: str) -> bool:
    return _under(p, ["src", "tools"]) and p != "src/common/timer.h" and \
        not _under(p, ["tools/lint"])


def _scope_umbrella(p: str) -> bool:
    return _under(p, ["bench", "examples"])


def _scope_layering(p: str) -> bool:
    return _under(p, ["src"])


def _scope_lock_order(p: str) -> bool:
    # mutex.h itself hosts the rank constants, the never-locked tier
    # sentinels, and the runtime checker — all unranked by design.
    return _under(p, ["src"]) and p != "src/common/mutex.h"


def _scope_det_taint(p: str) -> bool:
    return _under(p, ["src"])


RULES: Dict[str, Dict[str, object]] = {
    "status-value-unchecked": {
        "scope": _scope_status_value,
        "doc": "FcStatusOr .value()/operator*/-> with no dominating .ok() "
               "guard in the enclosing function (src/api, src/service, "
               "src/net, tools).",
    },
    "no-abort-in-service": {
        "scope": _scope_no_abort,
        "doc": "FC_CHECK/abort/throw/exit in the status-returning layers "
               "(src/api, src/service, src/net).",
    },
    "raw-mutex": {
        "scope": _scope_raw_mutex,
        "doc": "std::mutex & friends outside src/common/mutex.h (the "
               "annotated-locking discipline).",
    },
    "nondeterministic-iteration": {
        "scope": _scope_nondet_iter,
        "doc": "Iteration over unordered_{map,set} in src/ and tools/ "
               "(order can leak into results).",
    },
    "banned-entropy": {
        "scope": _scope_entropy,
        "doc": "rand/random_device/mt19937/time/chrono-now outside Timer "
               "and the seeded Rng.",
    },
    "umbrella-include": {
        "scope": _scope_umbrella,
        "doc": "bench/ and examples/ including per-method compression "
               "headers instead of src/api/fastcoreset.h.",
    },
    "layering-violation": {
        "scope": _scope_layering,
        "doc": "src/<mod> including a module outside its declared deps in "
               "tools/lint/layers.toml (upward or undeclared edge).",
    },
    "lock-order": {
        "scope": _scope_lock_order,
        "doc": "fc::Mutex declarations without a rank/hierarchy entry, and "
               "lexical acquisitions that invert the rank order in "
               "tools/lint/lock_hierarchy.toml.",
    },
    "determinism-taint": {
        "scope": _scope_det_taint,
        "doc": "thread-count/timer-derived values flowing into chunk "
               "plans, sampler seeds, or non-diagnostics result fields.",
    },
    # bad-suppression is emitted by the suppression parser itself; it is
    # listed so allow(bad-suppression) is rejected as self-referential.
}

KNOWN_RULES: Set[str] = set(RULES.keys())

# Project passes: need 2+ firing and 2+ clean fixtures each (the richer
# analyses have more ways to rot than a token scan).
_NEW_RULES = {"layering-violation", "lock-order", "determinism-taint"}


_INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(?:"([^"]+)"|<([^>]+)>)')


def extract_includes(stripped: str) -> List[Tuple[int, str, bool]]:
    out = []
    for idx, line in enumerate(stripped.split("\n"), start=1):
        m = _INCLUDE_RE.match(line)
        if m:
            if m.group(1) is not None:
                out.append((idx, m.group(1), False))
            else:
                out.append((idx, m.group(2), True))
    return out


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


def lint_file(rel_path: str, text: str, engine: str,
              abs_path: str, active_rules: Set[str],
              ctx: Optional["ProjectContext"] = None) -> List[Finding]:
    lex = lex_builtin(text)
    if engine == "clang":
        tokens = lex_clang(abs_path, text)
    else:
        tokens = lex.tokens
    includes = extract_includes(lex.stripped)
    sup = parse_suppressions(rel_path, lex, KNOWN_RULES)

    if ctx is not None:
        # Edge recording feeds --dot-out and is independent of which
        # rules are active — the graph artifact shows the whole tree.
        record_module_edges(rel_path, includes, ctx)

    findings: List[Finding] = list(sup.findings)
    rule_runners = {
        "status-value-unchecked":
            lambda: rule_status_value_unchecked(rel_path, tokens),
        "no-abort-in-service":
            lambda: rule_no_abort_in_service(rel_path, tokens),
        "raw-mutex": lambda: rule_raw_mutex(rel_path, tokens, includes),
        "nondeterministic-iteration":
            lambda: rule_nondeterministic_iteration(rel_path, tokens),
        "banned-entropy":
            lambda: rule_banned_entropy(rel_path, tokens, includes),
        "umbrella-include": lambda: rule_umbrella_include(rel_path, includes),
        "determinism-taint":
            lambda: rule_determinism_taint(rel_path, tokens),
    }
    if ctx is not None:
        rule_runners["layering-violation"] = \
            lambda: rule_layering_violation(rel_path, includes, ctx)
        rule_runners["lock-order"] = \
            lambda: rule_lock_order(rel_path, tokens, ctx)
    for rule_id, runner in rule_runners.items():
        if rule_id not in active_rules:
            continue
        if not RULES[rule_id]["scope"](rel_path):  # type: ignore[operator]
            continue
        for f in runner():
            if f.rule in sup.by_line.get(f.line, set()):
                f.suppressed = True
            findings.append(f)
    return [f for f in findings if not f.suppressed]


_SOURCE_EXTS = (".h", ".cc", ".cpp", ".hpp")
_SKIP_DIRS = {"build", ".git", "fixtures", "fuzz_corpus", "_deps"}


def collect_files(root: str, roots: Sequence[str]) -> List[str]:
    out: List[str] = []
    for r in roots:
        base = os.path.join(root, r)
        if os.path.isfile(base):
            out.append(os.path.relpath(base, root))
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = [d for d in dirnames if d not in _SKIP_DIRS]
            for fn in sorted(filenames):
                if fn.endswith(_SOURCE_EXTS):
                    out.append(os.path.relpath(os.path.join(dirpath, fn),
                                               root))
    return sorted(set(p.replace(os.sep, "/") for p in out))


def files_from_compile_commands(root: str, cc_path: str) -> List[str]:
    with open(cc_path, "r", encoding="utf-8") as f:
        db = json.load(f)
    out = []
    for entry in db:
        p = os.path.normpath(
            os.path.join(entry.get("directory", root), entry["file"]))
        rel = os.path.relpath(p, root).replace(os.sep, "/")
        if not rel.startswith(".."):
            out.append(rel)
    return sorted(set(out))


def run_lint(root: str, files: Sequence[str], engine: str,
             baseline: Dict[Tuple[str, str], int],
             active_rules: Set[str],
             ctx: Optional["ProjectContext"] = None,
             ) -> Tuple[List[Finding], List[Finding]]:
    """Returns (blocking findings, baselined findings)."""
    blocking: List[Finding] = []
    baselined: List[Finding] = []
    remaining = dict(baseline)

    def classify(finding: Finding) -> None:
        key = (finding.path, finding.rule)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            finding.baselined = True
            baselined.append(finding)
        else:
            blocking.append(finding)

    # Config errors surface as findings of the rule they break, so a
    # malformed hierarchy can never silently disable its pass.
    if ctx is not None:
        for finding in ctx.config_findings():
            if finding.rule in active_rules:
                classify(finding)

    for rel in files:
        abs_path = os.path.join(root, rel)
        try:
            with open(abs_path, "r", encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            print(f"fc_lint: cannot read {rel}: {e}", file=sys.stderr)
            continue
        for finding in lint_file(rel, text, engine, abs_path, active_rules,
                                 ctx):
            classify(finding)
    return blocking, baselined


# --------------------------------------------------------------------------
# Selftest over the fixture corpus
# --------------------------------------------------------------------------


def run_selftest(engine: str) -> int:
    here = os.path.dirname(os.path.abspath(__file__))
    fixture_dir = os.path.join(here, "fixtures")
    manifest_path = os.path.join(fixture_dir, "manifest.json")
    with open(manifest_path, "r", encoding="utf-8") as f:
        manifest = json.load(f)

    failures = 0
    fired_rules: Dict[str, int] = {}
    clean_rules: Dict[str, int] = {}
    for case in manifest["cases"]:
        fixture = os.path.join(fixture_dir, case["file"])
        virtual = case["path"]
        with open(fixture, "r", encoding="utf-8") as f:
            text = f.read()
        # Cases default to the repo's real configs (so fixtures double as
        # a check on those files); a case may override either one with a
        # fixture-local toml to exercise config-error paths.
        layers_file = case.get("layers")
        locks_file = case.get("lock_hierarchy")
        ctx = make_context(
            os.path.join(fixture_dir, layers_file) if layers_file
            else os.path.join(here, "layers.toml"),
            os.path.join(fixture_dir, locks_file) if locks_file
            else os.path.join(here, "lock_hierarchy.toml"),
            layers_display=layers_file or "tools/lint/layers.toml",
            locks_display=locks_file or "tools/lint/lock_hierarchy.toml")
        got = lint_file(virtual, text, engine, fixture, KNOWN_RULES, ctx)
        got += [f for f in ctx.config_findings()]
        got_set = sorted((f.rule, f.line) for f in got)
        want_set = sorted((e["rule"], e["line"]) for e in case["expect"])
        for rule in case.get("exercises", []):
            if any(r == rule for r, _ in want_set):
                fired_rules[rule] = fired_rules.get(rule, 0) + 1
            else:
                clean_rules[rule] = clean_rules.get(rule, 0) + 1
        if got_set != want_set:
            failures += 1
            print(f"FAIL {case['file']} (as {virtual})")
            print(f"  expected: {want_set}")
            print(f"  got:      {got_set}")
            for f_ in got:
                print(f"    {f_.render()}")
        else:
            print(f"ok   {case['file']} ({len(want_set)} findings)")

    # Golden --fix fixtures: rewriting `file` must yield `golden` exactly,
    # and rewriting `golden` again must be a no-op (idempotence).
    for case in manifest.get("fix_cases", []):
        with open(os.path.join(fixture_dir, case["file"]),
                  "r", encoding="utf-8") as f:
            before = f.read()
        with open(os.path.join(fixture_dir, case["golden"]),
                  "r", encoding="utf-8") as f:
            golden = f.read()
        fixed, n = apply_fixes(case["path"], before)
        if fixed != golden or n == 0:
            failures += 1
            print(f"FAIL fix {case['file']}: output does not match "
                  f"{case['golden']} ({n} fixes)")
        refixed, n2 = apply_fixes(case["path"], golden)
        if refixed != golden or n2 != 0:
            failures += 1
            print(f"FAIL fix {case['file']}: --fix is not idempotent "
                  f"({n2} fixes on the golden output)")
        if fixed == golden and n > 0 and n2 == 0:
            print(f"ok   fix {case['file']} -> {case['golden']} "
                  f"({n} fixes, idempotent)")

    # Corpus completeness: every rule needs firing and non-firing
    # fixtures (2+ each for the project passes), so a rule can neither
    # silently die nor over-trigger without the selftest noticing.
    for rule in sorted(KNOWN_RULES | {"bad-suppression"}):
        need = 2 if rule in _NEW_RULES else 1
        if fired_rules.get(rule, 0) < need:
            failures += 1
            print(f"FAIL corpus: rule '{rule}' needs >= {need} firing "
                  f"fixture(s), has {fired_rules.get(rule, 0)}")
        if clean_rules.get(rule, 0) < need:
            failures += 1
            print(f"FAIL corpus: rule '{rule}' needs >= {need} non-firing "
                  f"fixture(s), has {clean_rules.get(rule, 0)}")

    if failures:
        print(f"fc_lint selftest: {failures} failure(s)")
        return 1
    print(f"fc_lint selftest: all {len(manifest['cases'])} fixtures and "
          f"{len(manifest.get('fix_cases', []))} fix case(s) pass "
          f"({engine} engine)")
    return 0


# --------------------------------------------------------------------------
# main
# --------------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="fc_lint.py",
        description="Project-invariant static analyzer for fastcoreset.")
    parser.add_argument("roots", nargs="*", default=[],
                        help="directories/files to lint, relative to --root "
                             "(default: src tools bench examples)")
    parser.add_argument("--root", default=None,
                        help="repository root (default: two levels up from "
                             "this script)")
    parser.add_argument("--engine", choices=["auto", "builtin", "clang"],
                        default="auto",
                        help="token engine; auto uses libclang when the "
                             "python bindings are importable")
    parser.add_argument("--compile-commands", default=None,
                        help="compile_commands.json; lints the TUs it lists "
                             "(headers still come from the roots)")
    parser.add_argument("--baseline", default=None,
                        help="JSON baseline of grandfathered findings")
    parser.add_argument("--write-baseline", default=None,
                        help="write current findings as a baseline and exit")
    parser.add_argument("--rules", default=None,
                        help="comma-separated subset of rule ids to run")
    parser.add_argument("--layers", default=None,
                        help="module DAG config (default: layers.toml next "
                             "to this script)")
    parser.add_argument("--lock-hierarchy", default=None,
                        help="lock-rank config (default: "
                             "lock_hierarchy.toml next to this script)")
    parser.add_argument("--dot-out", default=None,
                        help="write the observed module include graph as "
                             "graphviz; exits 1 if the actual graph has a "
                             "cycle")
    parser.add_argument("--fix", action="store_true",
                        help="rewrite fixable findings in place "
                             "(umbrella-include, raw-mutex includes) and "
                             "exit")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--selftest", action="store_true",
                        help="run the fixture corpus and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id in sorted(RULES):
            print(f"{rule_id}\n    {RULES[rule_id]['doc']}")
        print("bad-suppression\n    fc-lint allow() without a written "
              "rationale, or naming an unknown rule.")
        return 0

    engine = args.engine
    if engine == "auto":
        engine = "clang" if clang_available() else "builtin"
    elif engine == "clang" and not clang_available():
        print("fc_lint: --engine clang requested but the libclang python "
              "bindings are not available", file=sys.stderr)
        return 2

    if args.selftest:
        return run_selftest(engine)

    root = args.root
    if root is None:
        root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
    root = os.path.abspath(root)

    active_rules = KNOWN_RULES
    if args.rules:
        active_rules = {r.strip() for r in args.rules.split(",") if r.strip()}
        unknown = active_rules - KNOWN_RULES
        if unknown:
            print(f"fc_lint: unknown rule(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2

    roots = args.roots or ["src", "tools", "bench", "examples"]
    files = collect_files(root, roots)
    if args.compile_commands:
        tu_files = files_from_compile_commands(root, args.compile_commands)
        headers = [f for f in files if f.endswith((".h", ".hpp"))]
        files = sorted(set(tu_files) | set(headers))

    if args.fix:
        total_fixes = 0
        for rel in files:
            abs_path = os.path.join(root, rel)
            try:
                with open(abs_path, "r", encoding="utf-8") as f:
                    text = f.read()
            except OSError as e:
                print(f"fc_lint: cannot read {rel}: {e}", file=sys.stderr)
                continue
            fixed, nfix = apply_fixes(rel, text)
            if nfix:
                with open(abs_path, "w", encoding="utf-8") as f:
                    f.write(fixed)
                print(f"fc_lint --fix: {rel}: rewrote {nfix} include(s)")
                total_fixes += nfix
        print(f"fc_lint --fix: {total_fixes} fix(es) applied across "
              f"{len(files)} file(s)")
        return 0

    here = os.path.dirname(os.path.abspath(__file__))
    layers_path = os.path.abspath(args.layers) if args.layers else \
        os.path.join(here, "layers.toml")
    locks_path = os.path.abspath(args.lock_hierarchy) if \
        args.lock_hierarchy else os.path.join(here, "lock_hierarchy.toml")

    def _display(p: str) -> str:
        rel = os.path.relpath(p, root).replace(os.sep, "/")
        return p.replace(os.sep, "/") if rel.startswith("..") else rel

    ctx = make_context(layers_path, locks_path,
                       _display(layers_path), _display(locks_path))

    baseline = load_baseline(args.baseline)
    blocking, baselined = run_lint(root, files, engine, baseline,
                                   active_rules, ctx)

    cycles: List[List[str]] = []
    if args.dot_out:
        cycles = write_module_dot(args.dot_out, ctx)
        print(f"fc_lint: wrote module graph "
              f"({len(ctx.module_edges)} edges) to {args.dot_out}")
        for cyc in cycles:
            print(f"fc_lint: module include cycle: {' -> '.join(cyc)}",
                  file=sys.stderr)

    if args.write_baseline:
        write_baseline(args.write_baseline, blocking)
        print(f"fc_lint: wrote {len(blocking)} finding(s) to "
              f"{args.write_baseline}")
        return 0

    for f in blocking:
        print(f.render())
    stale = sum(c for c in baseline.values()) - len(baselined)
    summary = (f"fc_lint ({engine} engine): {len(files)} files, "
               f"{len(blocking)} finding(s), {len(baselined)} baselined")
    if baseline and stale > 0:
        summary += f", {stale} stale baseline entr(y/ies) — burn them down"
    print(summary)
    return 1 if blocking or cycles else 0


if __name__ == "__main__":
    sys.exit(main())
