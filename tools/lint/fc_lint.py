#!/usr/bin/env python3
"""fc_lint: project-invariant static analyzer for the fastcoreset repo.

Generic tools cannot see this project's three load-bearing contracts:

  * bit-identical results at any FC_THREADS (the determinism contract),
  * the non-aborting FcStatus/FcStatusOr error model in src/api/ and
    src/service/ (the serving stack must never die on a bad request),
  * the PR 6 annotated-locking discipline (src/common/mutex.h wrappers).

fc_lint makes them machine-checked. Each rule has an ID, a fix-it-style
message, and a suppression syntax that *requires* a written rationale:

    // fc-lint: allow(<rule-id>): <why this site is safe>

A suppression comment covers its own line and, when it stands alone on a
line, the next line. A suppression without a rationale — or naming an
unknown rule — is itself an error (`bad-suppression`).

Rules (see RULES below for scope and details):

  status-value-unchecked   .value()/operator*/-> on an FcStatusOr with no
                           dominating .ok() guard in the enclosing function
  no-abort-in-service      FC_CHECK/abort/throw/exit in src/api, src/service
  raw-mutex                std::mutex & friends outside src/common/mutex.h
  nondeterministic-iteration  iterating unordered_{map,set} in src/
  banned-entropy           rand/random_device/time/chrono-now outside the
                           Timer/Rng abstractions
  umbrella-include         bench/examples reaching past src/api/fastcoreset.h
                           into per-method compression headers

Engines
-------
Rule logic consumes a normalized token stream. Two producers exist:

  * builtin — a self-contained C++ lexer (no dependencies). Authoritative:
    the fixture corpus and CI gate run on it everywhere.
  * clang   — libclang's lexer via the `clang.cindex` Python bindings,
    feeding the same normalized stream (used where the bindings and
    libclang are installed; `--engine auto` picks it up automatically).

Comment/suppression parsing and #include extraction always use the builtin
lexer so suppressions and the umbrella rule behave identically under both
engines.

Baseline
--------
`--baseline FILE` loads grandfathered findings (file+rule+count triples);
matched findings are reported as "baselined" and do not fail the run.
`--write-baseline FILE` records the current findings. The committed
baseline (tools/lint/fc_lint_baseline.json) is empty and must stay empty:
new findings are fixed or suppressed with a rationale, not baselined.

Typical invocations (from the repo root):

    python3 tools/lint/fc_lint.py src tools bench examples
    python3 tools/lint/fc_lint.py --selftest
    python3 tools/lint/fc_lint.py --list-rules
"""

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

# --------------------------------------------------------------------------
# Tokens
# --------------------------------------------------------------------------

# Token kinds: 'id' (identifier or keyword), 'num', 'str' (string literal),
# 'chr' (char literal), 'punct'.


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int


# Maximal-munch puncts, longest first, mirroring clang's lexer so both
# engines produce the same stream.
_PUNCTS = [
    "<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
    "^=", "##",
]

_ID_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_ID_CONT = _ID_START | set("0123456789")


@dataclass
class LexResult:
    tokens: List[Token]
    comments: List[Tuple[int, str]]  # (line, comment text incl. delimiters)
    # Source with comments replaced by spaces (string literals intact),
    # used for #include extraction.
    stripped: str


def lex_builtin(text: str) -> LexResult:
    """Hand-rolled C++ lexer: tokens + comments + comment-stripped text."""
    tokens: List[Token] = []
    comments: List[Tuple[int, str]] = []
    stripped = list(text)
    i, n, line = 0, len(text), 1

    def blank(a: int, b: int) -> None:
        for j in range(a, b):
            if stripped[j] not in "\n":
                stripped[j] = " "

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        # Line comment.
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            comments.append((line, text[i:j]))
            blank(i, j)
            i = j
            continue
        # Block comment.
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            comments.append((line, text[i:j]))
            blank(i, j)
            line += text.count("\n", i, j)
            i = j
            continue
        # Raw string literal: R"delim( ... )delim".
        if c == "R" and i + 1 < n and text[i + 1] == '"':
            m = re.match(r'R"([^()\\ \t\n]*)\(', text[i:])
            if m:
                end_mark = ")" + m.group(1) + '"'
                j = text.find(end_mark, i + m.end())
                j = n if j == -1 else j + len(end_mark)
                tokens.append(Token("str", text[i:j], line))
                line += text.count("\n", i, j)
                i = j
                continue
        # String / char literal (with escapes).
        if c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                if text[j] == "\\":
                    j += 1
                j += 1
            j = min(j + 1, n)
            tokens.append(Token("str" if c == '"' else "chr", text[i:j], line))
            line += text.count("\n", i, j)
            i = j
            continue
        # Identifier / keyword.
        if c in _ID_START:
            j = i + 1
            while j < n and text[j] in _ID_CONT:
                j += 1
            tokens.append(Token("id", text[i:j], line))
            i = j
            continue
        # Number (incl. hex, floats, digit separators; pp-numbers are fine).
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n and (text[j] in _ID_CONT or text[j] in ".'" or
                             (text[j] in "+-" and text[j - 1] in "eEpP")):
                j += 1
            tokens.append(Token("num", text[i:j], line))
            i = j
            continue
        # Punctuation, maximal munch.
        for p in _PUNCTS:
            if text.startswith(p, i):
                tokens.append(Token("punct", p, line))
                i += len(p)
                break
        else:
            tokens.append(Token("punct", c, line))
            i += 1
    return LexResult(tokens, comments, "".join(stripped))


def lex_clang(path: str, text: str) -> List[Token]:
    """libclang tokenizer -> the same normalized stream as lex_builtin.

    Only the token stream comes from libclang; comments, suppressions and
    include extraction stay on the builtin lexer (see module docstring).
    """
    import clang.cindex as cindex  # noqa: deferred, availability-gated

    tu = cindex.TranslationUnit.from_source(
        path,
        args=["-std=c++20", "-fsyntax-only"],
        unsaved_files=[(path, text)],
        options=cindex.TranslationUnit.PARSE_DETAILED_PREPROCESSING_RECORD,
    )
    out: List[Token] = []
    for tok in tu.get_tokens(extent=tu.cursor.extent):
        kind = tok.kind.name  # PUNCTUATION, KEYWORD, IDENTIFIER, LITERAL,
        # COMMENT
        spelling = tok.spelling
        line = tok.location.line
        if kind == "COMMENT":
            continue
        if kind in ("KEYWORD", "IDENTIFIER"):
            out.append(Token("id", spelling, line))
        elif kind == "LITERAL":
            if spelling.startswith(('"', 'R"', 'u"', 'U"', 'L"', 'u8"')):
                out.append(Token("str", spelling, line))
            elif spelling.startswith("'"):
                out.append(Token("chr", spelling, line))
            else:
                out.append(Token("num", spelling, line))
        else:
            out.append(Token("punct", spelling, line))
    return out


def clang_available() -> bool:
    try:
        import clang.cindex as cindex

        cindex.Config().get_cindex_library()
        return True
    except Exception:
        return False


# --------------------------------------------------------------------------
# Findings, suppressions, baseline
# --------------------------------------------------------------------------


@dataclass
class Finding:
    path: str  # repo-relative posix path
    line: int
    rule: str
    message: str
    baselined: bool = False
    suppressed: bool = False

    def render(self) -> str:
        return f"{self.path}:{self.line}: error: [{self.rule}] {self.message}"


_SUPPRESS_RE = re.compile(
    r"fc-lint:\s*allow\(\s*([A-Za-z0-9_,\s-]*?)\s*\)\s*(?::\s*(.*?))?\s*(?:\*/)?\s*$"
)


@dataclass
class Suppressions:
    # line -> set of rule ids allowed on that line.
    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    findings: List[Finding] = field(default_factory=list)  # bad-suppression


def parse_suppressions(path: str, lex: LexResult,
                       known_rules: Set[str]) -> Suppressions:
    sup = Suppressions()
    stripped_lines = lex.stripped.split("\n")
    for line_no, comment in lex.comments:
        if "fc-lint" not in comment:
            continue
        m = _SUPPRESS_RE.search(comment)
        if not m:
            sup.findings.append(Finding(
                path, line_no, "bad-suppression",
                "malformed fc-lint comment; use "
                "`// fc-lint: allow(<rule>): <rationale>`"))
            continue
        rules = [r.strip() for r in m.group(1).split(",") if r.strip()]
        rationale = (m.group(2) or "").strip()
        ok = True
        if not rules:
            sup.findings.append(Finding(
                path, line_no, "bad-suppression",
                "allow() names no rule"))
            ok = False
        for r in rules:
            if r not in known_rules:
                sup.findings.append(Finding(
                    path, line_no, "bad-suppression",
                    f"allow() names unknown rule '{r}'"))
                ok = False
        if len(rationale) < 10:
            sup.findings.append(Finding(
                path, line_no, "bad-suppression",
                "suppression requires a written rationale (>= 10 chars) "
                "after the colon: `// fc-lint: allow(<rule>): <why>`"))
            ok = False
        if not ok:
            continue
        covered = {line_no}
        # A comment alone on its line covers the next *code* line, skipping
        # blank lines and rationale-continuation comments (bounded so a
        # stray suppression cannot reach across a whole file).
        src_line = stripped_lines[line_no - 1] if line_no <= len(
            stripped_lines) else ""
        if not src_line.strip():
            for ln in range(line_no + 1, min(line_no + 6,
                                             len(stripped_lines) + 1)):
                covered.add(ln)
                if stripped_lines[ln - 1].strip():
                    break
        for ln in covered:
            sup.by_line.setdefault(ln, set()).update(rules)
    return sup


def load_baseline(path: Optional[str]) -> Dict[Tuple[str, str], int]:
    if not path:
        return {}
    with open(path, "r", encoding="utf-8") as f:
        entries = json.load(f)
    out: Dict[Tuple[str, str], int] = {}
    for e in entries:
        out[(e["file"], e["rule"])] = out.get((e["file"], e["rule"]), 0) + \
            int(e.get("count", 1))
    return out


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    counts: Dict[Tuple[str, str], int] = {}
    for f in findings:
        counts[(f.path, f.rule)] = counts.get((f.path, f.rule), 0) + 1
    entries = [{"file": k[0], "rule": k[1], "count": v}
               for k, v in sorted(counts.items())]
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(entries, fh, indent=2)
        fh.write("\n")


# --------------------------------------------------------------------------
# Scope helpers
# --------------------------------------------------------------------------


def _under(path: str, prefixes: Sequence[str]) -> bool:
    return any(path == p or path.startswith(p.rstrip("/") + "/")
               for p in prefixes)


# --------------------------------------------------------------------------
# Rule 1: status-value-unchecked
# --------------------------------------------------------------------------

_STATUSOR_NAMES = {"FcStatusOr"}
_GUARD_MEMBERS = {"ok", "has_value"}
_EVIDENCE_MEMBERS = {"ok", "status", "has_value"}


def _function_bodies(tokens: List[Token]) -> List[Tuple[int, int]]:
    """[start, end) token ranges of outermost function-like bodies.

    A `{` opens a function body when we are not already inside one and
    scanning backwards (skipping matched `{...}` groups, e.g. brace
    member-inits in a ctor-init list) hits `)` before any of `;` `{` `}`.
    This also admits namespace-scope lambdas, which is what we want.
    """
    bodies: List[Tuple[int, int]] = []
    depth = 0
    body_open_depth: Optional[int] = None
    body_start = 0
    for i, tok in enumerate(tokens):
        if tok.kind != "punct":
            continue
        if tok.text == "{":
            if body_open_depth is None and _looks_like_function_open(tokens, i):
                body_open_depth = depth
                body_start = i
            depth += 1
        elif tok.text == "}":
            depth -= 1
            if body_open_depth is not None and depth == body_open_depth:
                bodies.append((body_start, i + 1))
                body_open_depth = None
    if body_open_depth is not None:  # unbalanced file; take what we have
        bodies.append((body_start, len(tokens)))
    return bodies


def _looks_like_function_open(tokens: List[Token], at: int) -> bool:
    i = at - 1
    skipped_group = False
    seen_colon = False
    while i >= 0:
        tok = tokens[i]
        if tok.kind == "punct":
            if tok.text == ")":
                # Plain `...) {` is a body. If we skipped a brace group on
                # the way here it must have been a ctor member-init
                # (`Foo() : a_{x} {`), which always has a `:` between the
                # `)` and the braces — without one, the group we skipped
                # was a *previous definition's* body and this `{` opens a
                # class/enum/namespace, not a function.
                return seen_colon or not skipped_group
            if tok.text in (";", "{"):
                return False
            if tok.text == ":":
                seen_colon = True
            if tok.text == "}":
                # Skip a matched {...} group (brace member-init) and keep
                # scanning left.
                skipped_group = True
                depth = 1
                i -= 1
                while i >= 0 and depth:
                    if tokens[i].kind == "punct":
                        if tokens[i].text == "}":
                            depth += 1
                        elif tokens[i].text == "{":
                            depth -= 1
                    i -= 1
                continue
        elif tok.kind == "id" and tok.text in ("else", "do", "try"):
            # `else {`, `do {`, `try {` are statement blocks, not bodies —
            # but those only occur inside a function we are already in.
            return False
        i -= 1
    return False


def _collect_statusor_decls(tokens: List[Token], lo: int, hi: int) -> Set[str]:
    """Names declared with an explicit FcStatusOr<...> type in [lo, hi)."""
    names: Set[str] = set()
    i = lo
    while i < hi:
        tok = tokens[i]
        if tok.kind == "id" and tok.text in _STATUSOR_NAMES:
            j = i + 1
            if j < hi and tokens[j].kind == "punct" and tokens[j].text == "<":
                # Match template args; `>>` closes two levels.
                depth = 0
                while j < hi:
                    t = tokens[j]
                    if t.kind == "punct":
                        if t.text == "<":
                            depth += 1
                        elif t.text == ">":
                            depth -= 1
                            if depth == 0:
                                break
                        elif t.text == ">>":
                            depth -= 2
                            if depth <= 0:
                                break
                    j += 1
                j += 1
                # Optional ref/ptr qualifiers, then the declared name.
                while j < hi and tokens[j].kind == "punct" and \
                        tokens[j].text in ("&", "*", "&&"):
                    j += 1
                if j < hi and tokens[j].kind == "id":
                    nxt = tokens[j + 1] if j + 1 < hi else None
                    if nxt is not None and nxt.kind == "punct" and \
                            nxt.text in ("=", ";", ",", ")", "(", "{"):
                        names.add(tokens[j].text)
                        i = j
        i += 1
    return names


def _collect_evidence_names(tokens: List[Token], lo: int, hi: int) -> Set[str]:
    """Names used with .ok()/.status()/.has_value() — status-like evidence
    for `auto`-declared FcStatusOr variables."""
    names: Set[str] = set()
    for i in range(lo, hi - 3):
        if (tokens[i].kind == "id" and tokens[i + 1].kind == "punct" and
                tokens[i + 1].text == "." and tokens[i + 2].kind == "id" and
                tokens[i + 2].text in _EVIDENCE_MEMBERS and
                tokens[i + 3].kind == "punct" and tokens[i + 3].text == "("):
            prev = tokens[i - 1] if i > lo else None
            if prev is None or not (prev.kind == "punct" and
                                    prev.text in (".", "->", "::")):
                names.add(tokens[i].text)
    return names


def rule_status_value_unchecked(path: str, tokens: List[Token]) -> List[Finding]:
    findings: List[Finding] = []
    for lo, hi in _function_bodies(tokens):
        tracked = _collect_statusor_decls(tokens, lo, hi)
        tracked |= _collect_evidence_names(tokens, lo, hi)
        # Include decls in the parameter list / return type immediately
        # before the body (parameters are uses too).
        param_lo = max(0, lo - 64)
        tracked |= _collect_statusor_decls(tokens, param_lo, lo)
        guarded: Set[str] = set()
        i = lo
        while i < hi:
            tok = tokens[i]
            nxt = tokens[i + 1] if i + 1 < hi else None
            prv = tokens[i - 1] if i > 0 else None
            if tok.kind == "id" and tok.text in tracked and not (
                    prv is not None and prv.kind == "punct" and
                    prv.text in (".", "->", "::")):
                name = tok.text
                # Guard: name.ok() / name.has_value().
                if (nxt is not None and nxt.text == "." and i + 3 < hi and
                        tokens[i + 2].kind == "id" and
                        tokens[i + 2].text in _GUARD_MEMBERS and
                        tokens[i + 3].text == "("):
                    guarded.add(name)
                    i += 4
                    continue
                # Reassignment invalidates an earlier guard.
                if (nxt is not None and nxt.kind == "punct" and
                        nxt.text == "="):
                    guarded.discard(name)
                    i += 2
                    continue
                # Use: name.value(), name->member, *name (unary context).
                use = None
                if (nxt is not None and nxt.text == "." and i + 3 < hi and
                        tokens[i + 2].kind == "id" and
                        tokens[i + 2].text == "value" and
                        tokens[i + 3].text == "("):
                    use = f"'{name}.value()'"
                elif nxt is not None and nxt.kind == "punct" and \
                        nxt.text == "->":
                    use = f"'{name}->'"
                if prv is not None and prv.kind == "punct" and \
                        prv.text == "*" and use is None:
                    before = tokens[i - 2] if i >= 2 else None
                    if before is None or (before.kind == "punct" and
                                          before.text in
                                          ("=", "(", ",", "{", ";", "<",
                                           "return")) or \
                            (before.kind == "id" and before.text == "return"):
                        use = f"'*{name}'"
                if use is not None and name not in guarded:
                    findings.append(Finding(
                        path, tok.line, "status-value-unchecked",
                        f"{use} on FcStatusOr '{name}' with no dominating "
                        f".ok() guard in this function; add "
                        f"`if (!{name}.ok()) return {name}.status();` (or "
                        f"equivalent) before the access"))
            # Chained: <call>(...).value() — can never have been checked.
            if (tok.kind == "punct" and tok.text == ")" and nxt is not None and
                    nxt.text == "." and i + 3 < hi and
                    tokens[i + 2].kind == "id" and
                    tokens[i + 2].text == "value" and
                    tokens[i + 3].text == "("):
                # Exclude `x.value().value()`-ish? No: still unchecked.
                # Exclude the guard idiom `(x = f()).ok()` — not .value().
                findings.append(Finding(
                    path, tokens[i + 2].line, "status-value-unchecked",
                    "'.value()' directly on a call result — the status was "
                    "never checked (the PR 6 server-abort TOCTOU class); "
                    "bind the FcStatusOr to a named local and test .ok() "
                    "first"))
            i += 1
    return findings


# --------------------------------------------------------------------------
# Rule 2: no-abort-in-service
# --------------------------------------------------------------------------

_ABORT_IDS = {
    "FC_CHECK", "FC_CHECK_MSG", "FC_CHECK_EQ", "FC_CHECK_NE", "FC_CHECK_GT",
    "FC_CHECK_GE", "FC_CHECK_LT", "FC_CHECK_LE", "FC_DCHECK", "CheckFailed",
    "abort", "exit", "_Exit", "quick_exit", "terminate", "throw",
}


def rule_no_abort_in_service(path: str, tokens: List[Token]) -> List[Finding]:
    findings = []
    for i, tok in enumerate(tokens):
        if tok.kind != "id" or tok.text not in _ABORT_IDS:
            continue
        prv = tokens[i - 1] if i > 0 else None
        if prv is not None and prv.kind == "punct" and prv.text in (".", "->"):
            continue  # member named e.g. `exit` — not the libc call
        if prv is not None and prv.kind == "id" and \
                prv.text not in ("return", "else", "do"):
            continue  # `void exit();` — a declaration, not a call
        if tok.text == "throw":
            findings.append(Finding(
                path, tok.line, "no-abort-in-service",
                "'throw' in the status-returning error model; return "
                "FcStatus::Internal(...) (src/api and src/service promised "
                "a non-aborting surface in PR 4)"))
            continue
        nxt = tokens[i + 1] if i + 1 < len(tokens) else None
        if nxt is None or not (nxt.kind == "punct" and nxt.text == "("):
            continue  # mention, not a call/macro invocation
        findings.append(Finding(
            path, tok.line, "no-abort-in-service",
            f"'{tok.text}' aborts the process; src/api and src/service "
            f"promised a status-returning error model — return a non-ok "
            f"FcStatus instead, or suppress with a rationale naming the "
            f"invariant that makes aborting correct"))
    return findings


# --------------------------------------------------------------------------
# Rule 3: raw-mutex
# --------------------------------------------------------------------------

_RAW_MUTEX_TYPES = {
    "mutex", "timed_mutex", "recursive_mutex", "recursive_timed_mutex",
    "shared_mutex", "shared_timed_mutex", "lock_guard", "unique_lock",
    "scoped_lock", "shared_lock", "condition_variable",
    "condition_variable_any", "call_once", "once_flag",
}
_RAW_MUTEX_INCLUDES = {"mutex", "shared_mutex", "condition_variable"}


def rule_raw_mutex(path: str, tokens: List[Token],
                   includes: List[Tuple[int, str, bool]]) -> List[Finding]:
    findings = []
    for line, inc, angled in includes:
        if angled and inc in _RAW_MUTEX_INCLUDES:
            findings.append(Finding(
                path, line, "raw-mutex",
                f"#include <{inc}> outside src/common/mutex.h; use the "
                f"annotated Mutex/MutexLock/CondVar wrappers so the clang "
                f"thread-safety analysis can see every lock"))
    for i in range(len(tokens) - 2):
        if (tokens[i].kind == "id" and tokens[i].text == "std" and
                tokens[i + 1].kind == "punct" and tokens[i + 1].text == "::"
                and tokens[i + 2].kind == "id" and
                tokens[i + 2].text in _RAW_MUTEX_TYPES):
            findings.append(Finding(
                path, tokens[i].line, "raw-mutex",
                f"raw 'std::{tokens[i + 2].text}' outside src/common/mutex.h; "
                f"use the annotated wrappers (Mutex, MutexLock, CondVar) — "
                f"raw primitives are invisible to -Wthread-safety"))
    return findings


# --------------------------------------------------------------------------
# Rule 4: nondeterministic-iteration
# --------------------------------------------------------------------------

_UNORDERED_TYPES = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset",
}


def _collect_unordered_vars(tokens: List[Token]) -> Tuple[Set[str], Set[str]]:
    """(variable names, type alias names) of unordered container types."""
    type_names = set(_UNORDERED_TYPES)
    var_names: Set[str] = set()
    # Two passes so aliases declared after use still count.
    for _ in range(2):
        i = 0
        while i < len(tokens):
            tok = tokens[i]
            if tok.kind == "id" and tok.text in type_names:
                # Skip std:: qualifier handling — we matched the base name.
                j = i + 1
                if j < len(tokens) and tokens[j].kind == "punct" and \
                        tokens[j].text == "<":
                    depth = 0
                    while j < len(tokens):
                        t = tokens[j]
                        if t.kind == "punct":
                            if t.text == "<":
                                depth += 1
                            elif t.text == ">":
                                depth -= 1
                                if depth == 0:
                                    break
                            elif t.text == ">>":
                                depth -= 2
                                if depth <= 0:
                                    break
                        j += 1
                    j += 1
                while j < len(tokens) and tokens[j].kind == "punct" and \
                        tokens[j].text in ("&", "*"):
                    j += 1
                if j < len(tokens) and tokens[j].kind == "id":
                    nxt = tokens[j + 1] if j + 1 < len(tokens) else None
                    if nxt is not None and nxt.kind == "punct" and \
                            nxt.text in (";", "=", "{", "(", ",", ")"):
                        var_names.add(tokens[j].text)
                # Alias: using NAME = std::unordered_map<...>;
                if i >= 3 and tokens[i - 3].kind == "id" and \
                        tokens[i - 3].text not in ("std",):
                    pass
            if tok.kind == "id" and tok.text == "using" and \
                    i + 2 < len(tokens) and tokens[i + 1].kind == "id" and \
                    tokens[i + 2].kind == "punct" and \
                    tokens[i + 2].text == "=":
                # using X = ... unordered_map ... ;
                k = i + 3
                is_unordered = False
                while k < len(tokens) and tokens[k].text != ";":
                    if tokens[k].kind == "id" and \
                            tokens[k].text in _UNORDERED_TYPES:
                        is_unordered = True
                    k += 1
                if is_unordered:
                    type_names.add(tokens[i + 1].text)
            i += 1
    return var_names, type_names


def rule_nondeterministic_iteration(path: str,
                                    tokens: List[Token]) -> List[Finding]:
    findings = []
    var_names, _ = _collect_unordered_vars(tokens)
    n = len(tokens)
    for i, tok in enumerate(tokens):
        # Range-for whose range expression ends in a tracked variable:
        # for ( ... : <expr ending in NAME> )
        if tok.kind == "id" and tok.text == "for" and i + 1 < n and \
                tokens[i + 1].text == "(":
            depth = 0
            colon = None
            j = i + 1
            while j < n:
                t = tokens[j]
                if t.kind == "punct":
                    if t.text == "(":
                        depth += 1
                    elif t.text == ")":
                        depth -= 1
                        if depth == 0:
                            break
                    elif t.text == ":" and depth == 1 and colon is None:
                        colon = j
                j += 1
            close = j
            if colon is not None and close < n:
                last = tokens[close - 1]
                if last.kind == "id" and last.text in var_names:
                    findings.append(Finding(
                        path, tok.line, "nondeterministic-iteration",
                        f"range-for over unordered container '{last.text}': "
                        f"iteration order is nondeterministic and can leak "
                        f"into results, breaking the bit-reproducibility "
                        f"contract; iterate a sorted copy (or suppress with "
                        f"a rationale naming the order-insensitive sink)"))
        # NAME.begin() / cbegin / rbegin on a tracked variable.
        if tok.kind == "id" and tok.text in var_names and i + 3 < n and \
                tokens[i + 1].text == "." and tokens[i + 2].kind == "id" and \
                tokens[i + 2].text in ("begin", "cbegin", "rbegin") and \
                tokens[i + 3].text == "(":
            prv = tokens[i - 1] if i > 0 else None
            if prv is not None and prv.kind == "punct" and \
                    prv.text in (".", "->", "::"):
                continue
            findings.append(Finding(
                path, tok.line, "nondeterministic-iteration",
                f"iterator over unordered container '{tok.text}': iteration "
                f"order is nondeterministic and can leak into results; "
                f"iterate a sorted copy (or suppress with a rationale "
                f"naming the order-insensitive sink)"))
    return findings


# --------------------------------------------------------------------------
# Rule 5: banned-entropy
# --------------------------------------------------------------------------

_ENTROPY_TYPES = {
    "random_device", "mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
    "default_random_engine", "ranlux24", "ranlux48", "knuth_b",
    "system_clock", "steady_clock", "high_resolution_clock",
}
_ENTROPY_CALLS = {
    "rand", "srand", "rand_r", "drand48", "lrand48", "mrand48", "srand48",
    "random", "srandom", "time", "clock", "gettimeofday", "clock_gettime",
    "timespec_get",
}
_ENTROPY_INCLUDES = {"random"}


def rule_banned_entropy(path: str, tokens: List[Token],
                        includes: List[Tuple[int, str, bool]]) -> List[Finding]:
    findings = []
    for line, inc, angled in includes:
        if angled and inc in _ENTROPY_INCLUDES:
            findings.append(Finding(
                path, line, "banned-entropy",
                "#include <random> in algorithm code; all randomness must "
                "flow through the seeded Rng (src/common/rng.h) so results "
                "are reproducible from a single seed"))
    n = len(tokens)
    for i, tok in enumerate(tokens):
        if tok.kind != "id":
            continue
        prv = tokens[i - 1] if i > 0 else None
        member = prv is not None and prv.kind == "punct" and \
            prv.text in (".", "->")
        if tok.text in _ENTROPY_TYPES and not member:
            what = "wall-clock source" if "clock" in tok.text else \
                "entropy source"
            findings.append(Finding(
                path, tok.line, "banned-entropy",
                f"'{tok.text}' is a nondeterministic {what}; use the seeded "
                f"Rng (src/common/rng.h) for randomness and Timer "
                f"(src/common/timer.h) for diagnostics-only timing"))
            continue
        if tok.text in _ENTROPY_CALLS and not member and i + 1 < n and \
                tokens[i + 1].kind == "punct" and tokens[i + 1].text == "(":
            # `now(` reached via Clock::now is covered by the type names
            # above; plain calls like time(nullptr), rand() land here.
            findings.append(Finding(
                path, tok.line, "banned-entropy",
                f"call to '{tok.text}()' in algorithm code; randomness must "
                f"come from the seeded Rng and timing from Timer "
                f"(diagnostics/bench allowlist only)"))
        if tok.text == "now" and prv is not None and prv.kind == "punct" and \
                prv.text == "::" and i + 1 < n and \
                tokens[i + 1].text == "(":
            findings.append(Finding(
                path, tok.line, "banned-entropy",
                "'::now()' reads the wall clock; timing belongs in Timer "
                "(src/common/timer.h) and the diagnostics/bench allowlist"))
    return findings


# --------------------------------------------------------------------------
# Rule 6: umbrella-include
# --------------------------------------------------------------------------

# The per-method compression headers PR 4 made internal: bench/ and
# examples/ must reach every coreset method through the facade.
_METHOD_HEADERS = re.compile(
    r"^src/(core/(uniform_sampling|lightweight_coreset|welterweight_coreset|"
    r"sensitivity_sampling|fast_coreset|group_sampling)|"
    r"streaming/(bico|streamkm))\.h$")


def rule_umbrella_include(path: str,
                          includes: List[Tuple[int, str, bool]]) -> List[Finding]:
    findings = []
    for line, inc, angled in includes:
        if not angled and _METHOD_HEADERS.match(inc):
            findings.append(Finding(
                path, line, "umbrella-include",
                f'#include "{inc}" is a per-method compression header, '
                f"internal since PR 4; include \"src/api/fastcoreset.h\" "
                f"and go through api::Build / the registry instead"))
    return findings


# --------------------------------------------------------------------------
# Rule table: id -> (scope predicate, runner docstring)
# --------------------------------------------------------------------------


def _scope_status_value(p: str) -> bool:
    return (_under(p, ["src/api", "src/service"]) or
            (_under(p, ["tools"]) and not _under(p, ["tools/lint"])))


def _scope_no_abort(p: str) -> bool:
    return _under(p, ["src/api", "src/service"])


def _scope_raw_mutex(p: str) -> bool:
    return _under(p, ["src", "tools", "bench", "examples"]) and \
        p != "src/common/mutex.h" and not _under(p, ["tools/lint"])


def _scope_nondet_iter(p: str) -> bool:
    return _under(p, ["src", "tools"]) and not _under(p, ["tools/lint"])


def _scope_entropy(p: str) -> bool:
    return _under(p, ["src", "tools"]) and p != "src/common/timer.h" and \
        not _under(p, ["tools/lint"])


def _scope_umbrella(p: str) -> bool:
    return _under(p, ["bench", "examples"])


RULES: Dict[str, Dict[str, object]] = {
    "status-value-unchecked": {
        "scope": _scope_status_value,
        "doc": "FcStatusOr .value()/operator*/-> with no dominating .ok() "
               "guard in the enclosing function (src/api, src/service, "
               "tools).",
    },
    "no-abort-in-service": {
        "scope": _scope_no_abort,
        "doc": "FC_CHECK/abort/throw/exit in the status-returning layers "
               "(src/api, src/service).",
    },
    "raw-mutex": {
        "scope": _scope_raw_mutex,
        "doc": "std::mutex & friends outside src/common/mutex.h (the "
               "annotated-locking discipline).",
    },
    "nondeterministic-iteration": {
        "scope": _scope_nondet_iter,
        "doc": "Iteration over unordered_{map,set} in src/ and tools/ "
               "(order can leak into results).",
    },
    "banned-entropy": {
        "scope": _scope_entropy,
        "doc": "rand/random_device/mt19937/time/chrono-now outside Timer "
               "and the seeded Rng.",
    },
    "umbrella-include": {
        "scope": _scope_umbrella,
        "doc": "bench/ and examples/ including per-method compression "
               "headers instead of src/api/fastcoreset.h.",
    },
    # bad-suppression is emitted by the suppression parser itself; it is
    # listed so allow(bad-suppression) is rejected as self-referential.
}

KNOWN_RULES: Set[str] = set(RULES.keys())


_INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(?:"([^"]+)"|<([^>]+)>)')


def extract_includes(stripped: str) -> List[Tuple[int, str, bool]]:
    out = []
    for idx, line in enumerate(stripped.split("\n"), start=1):
        m = _INCLUDE_RE.match(line)
        if m:
            if m.group(1) is not None:
                out.append((idx, m.group(1), False))
            else:
                out.append((idx, m.group(2), True))
    return out


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


def lint_file(rel_path: str, text: str, engine: str,
              abs_path: str, active_rules: Set[str]) -> List[Finding]:
    lex = lex_builtin(text)
    if engine == "clang":
        tokens = lex_clang(abs_path, text)
    else:
        tokens = lex.tokens
    includes = extract_includes(lex.stripped)
    sup = parse_suppressions(rel_path, lex, KNOWN_RULES)

    findings: List[Finding] = list(sup.findings)
    rule_runners = {
        "status-value-unchecked":
            lambda: rule_status_value_unchecked(rel_path, tokens),
        "no-abort-in-service":
            lambda: rule_no_abort_in_service(rel_path, tokens),
        "raw-mutex": lambda: rule_raw_mutex(rel_path, tokens, includes),
        "nondeterministic-iteration":
            lambda: rule_nondeterministic_iteration(rel_path, tokens),
        "banned-entropy":
            lambda: rule_banned_entropy(rel_path, tokens, includes),
        "umbrella-include": lambda: rule_umbrella_include(rel_path, includes),
    }
    for rule_id, runner in rule_runners.items():
        if rule_id not in active_rules:
            continue
        if not RULES[rule_id]["scope"](rel_path):  # type: ignore[operator]
            continue
        for f in runner():
            if f.rule in sup.by_line.get(f.line, set()):
                f.suppressed = True
            findings.append(f)
    return [f for f in findings if not f.suppressed]


_SOURCE_EXTS = (".h", ".cc", ".cpp", ".hpp")
_SKIP_DIRS = {"build", ".git", "fixtures", "fuzz_corpus", "_deps"}


def collect_files(root: str, roots: Sequence[str]) -> List[str]:
    out: List[str] = []
    for r in roots:
        base = os.path.join(root, r)
        if os.path.isfile(base):
            out.append(os.path.relpath(base, root))
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = [d for d in dirnames if d not in _SKIP_DIRS]
            for fn in sorted(filenames):
                if fn.endswith(_SOURCE_EXTS):
                    out.append(os.path.relpath(os.path.join(dirpath, fn),
                                               root))
    return sorted(set(p.replace(os.sep, "/") for p in out))


def files_from_compile_commands(root: str, cc_path: str) -> List[str]:
    with open(cc_path, "r", encoding="utf-8") as f:
        db = json.load(f)
    out = []
    for entry in db:
        p = os.path.normpath(
            os.path.join(entry.get("directory", root), entry["file"]))
        rel = os.path.relpath(p, root).replace(os.sep, "/")
        if not rel.startswith(".."):
            out.append(rel)
    return sorted(set(out))


def run_lint(root: str, files: Sequence[str], engine: str,
             baseline: Dict[Tuple[str, str], int],
             active_rules: Set[str]) -> Tuple[List[Finding], List[Finding]]:
    """Returns (blocking findings, baselined findings)."""
    blocking: List[Finding] = []
    baselined: List[Finding] = []
    remaining = dict(baseline)
    for rel in files:
        abs_path = os.path.join(root, rel)
        try:
            with open(abs_path, "r", encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            print(f"fc_lint: cannot read {rel}: {e}", file=sys.stderr)
            continue
        for finding in lint_file(rel, text, engine, abs_path, active_rules):
            key = (finding.path, finding.rule)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                finding.baselined = True
                baselined.append(finding)
            else:
                blocking.append(finding)
    return blocking, baselined


# --------------------------------------------------------------------------
# Selftest over the fixture corpus
# --------------------------------------------------------------------------


def run_selftest(engine: str) -> int:
    here = os.path.dirname(os.path.abspath(__file__))
    fixture_dir = os.path.join(here, "fixtures")
    manifest_path = os.path.join(fixture_dir, "manifest.json")
    with open(manifest_path, "r", encoding="utf-8") as f:
        manifest = json.load(f)

    failures = 0
    fired_rules: Set[str] = set()
    clean_rules: Set[str] = set()
    for case in manifest["cases"]:
        fixture = os.path.join(fixture_dir, case["file"])
        virtual = case["path"]
        with open(fixture, "r", encoding="utf-8") as f:
            text = f.read()
        got = lint_file(virtual, text, engine, fixture, KNOWN_RULES)
        got_set = sorted((f.rule, f.line) for f in got)
        want_set = sorted((e["rule"], e["line"]) for e in case["expect"])
        for rule in case.get("exercises", []):
            if any(r == rule for r, _ in want_set):
                fired_rules.add(rule)
            else:
                clean_rules.add(rule)
        if got_set != want_set:
            failures += 1
            print(f"FAIL {case['file']} (as {virtual})")
            print(f"  expected: {want_set}")
            print(f"  got:      {got_set}")
            for f_ in got:
                print(f"    {f_.render()}")
        else:
            print(f"ok   {case['file']} ({len(want_set)} findings)")

    # Corpus completeness: every rule must have at least one firing and one
    # non-firing fixture, so a rule can neither silently die nor
    # over-trigger without the selftest noticing.
    for rule in sorted(KNOWN_RULES | {"bad-suppression"}):
        if rule not in fired_rules:
            failures += 1
            print(f"FAIL corpus: rule '{rule}' has no firing fixture")
        if rule not in clean_rules:
            failures += 1
            print(f"FAIL corpus: rule '{rule}' has no non-firing fixture")

    if failures:
        print(f"fc_lint selftest: {failures} failure(s)")
        return 1
    print(f"fc_lint selftest: all {len(manifest['cases'])} fixtures pass "
          f"({engine} engine)")
    return 0


# --------------------------------------------------------------------------
# main
# --------------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="fc_lint.py",
        description="Project-invariant static analyzer for fastcoreset.")
    parser.add_argument("roots", nargs="*", default=[],
                        help="directories/files to lint, relative to --root "
                             "(default: src tools bench examples)")
    parser.add_argument("--root", default=None,
                        help="repository root (default: two levels up from "
                             "this script)")
    parser.add_argument("--engine", choices=["auto", "builtin", "clang"],
                        default="auto",
                        help="token engine; auto uses libclang when the "
                             "python bindings are importable")
    parser.add_argument("--compile-commands", default=None,
                        help="compile_commands.json; lints the TUs it lists "
                             "(headers still come from the roots)")
    parser.add_argument("--baseline", default=None,
                        help="JSON baseline of grandfathered findings")
    parser.add_argument("--write-baseline", default=None,
                        help="write current findings as a baseline and exit")
    parser.add_argument("--rules", default=None,
                        help="comma-separated subset of rule ids to run")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--selftest", action="store_true",
                        help="run the fixture corpus and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id in sorted(RULES):
            print(f"{rule_id}\n    {RULES[rule_id]['doc']}")
        print("bad-suppression\n    fc-lint allow() without a written "
              "rationale, or naming an unknown rule.")
        return 0

    engine = args.engine
    if engine == "auto":
        engine = "clang" if clang_available() else "builtin"
    elif engine == "clang" and not clang_available():
        print("fc_lint: --engine clang requested but the libclang python "
              "bindings are not available", file=sys.stderr)
        return 2

    if args.selftest:
        return run_selftest(engine)

    root = args.root
    if root is None:
        root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
    root = os.path.abspath(root)

    active_rules = KNOWN_RULES
    if args.rules:
        active_rules = {r.strip() for r in args.rules.split(",") if r.strip()}
        unknown = active_rules - KNOWN_RULES
        if unknown:
            print(f"fc_lint: unknown rule(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2

    roots = args.roots or ["src", "tools", "bench", "examples"]
    files = collect_files(root, roots)
    if args.compile_commands:
        tu_files = files_from_compile_commands(root, args.compile_commands)
        headers = [f for f in files if f.endswith((".h", ".hpp"))]
        files = sorted(set(tu_files) | set(headers))

    baseline = load_baseline(args.baseline)
    blocking, baselined = run_lint(root, files, engine, baseline,
                                   active_rules)

    if args.write_baseline:
        write_baseline(args.write_baseline, blocking)
        print(f"fc_lint: wrote {len(blocking)} finding(s) to "
              f"{args.write_baseline}")
        return 0

    for f in blocking:
        print(f.render())
    stale = sum(c for c in baseline.values()) - len(baselined)
    summary = (f"fc_lint ({engine} engine): {len(files)} files, "
               f"{len(blocking)} finding(s), {len(baselined)} baselined")
    if baseline and stale > 0:
        summary += f", {stale} stale baseline entr(y/ies) — burn them down"
    print(summary)
    return 1 if blocking else 0


if __name__ == "__main__":
    sys.exit(main())
