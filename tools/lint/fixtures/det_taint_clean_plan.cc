// Fixture: determinism-taint MUST NOT fire — the chunk plan depends on
// n alone; the worker count only sizes the parallelism budget (which
// changes scheduling, never results), and the env read is not a
// thread-count knob.
// Linted as src/core/det_taint_clean_plan.cc.
#include "src/common/parallel.h"

namespace fastcoreset {

void PlanFromN(int n) {
  int chunks = ParallelChunkCount(n);
  int workers = GetNumThreads();
  ParallelBudgetScope budget(workers / 2);
  int verbosity = EnvInt("FC_BUILD_VERBOSE", 0);
  ParallelFor(n + verbosity - verbosity, [chunks](int) { (void)chunks; });
}

}  // namespace fastcoreset
