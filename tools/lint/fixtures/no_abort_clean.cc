// Fixture: no-abort-in-service MUST NOT fire.
// Linted as src/service/no_abort_clean.cc.
#include "src/api/status.h"

namespace fastcoreset::service {

FcStatus HandleBadRequest(int n) {
  if (n < 0) {
    return FcStatus::InvalidArgument("n must be non-negative");
  }
  // A multi-line rationale: the suppression covers the next *code* line,
  // skipping its own continuation comments.
  // fc-lint: allow(no-abort-in-service): registration happens once at
  // static-init time; a duplicate name is a programmer error, not a
  // request error.
  FC_CHECK(n != 1'000'000);
  return FcStatus::Ok();
}

// A member *named* exit is not the libc call.
struct Session {
  void exit();
};

void Close(Session& s) { s.exit(); }

}  // namespace fastcoreset::service
