// Fixture: FC_CHECK outside src/api and src/service is fine — algorithm
// code may assert its own invariants. MUST NOT fire.
// Linted as src/core/no_abort_out_of_scope.cc.
#include "src/common/check.h"

namespace fastcoreset {

double Kernel(int n) {
  FC_CHECK_GT(n, 0);
  return 1.0 / n;
}

}  // namespace fastcoreset
