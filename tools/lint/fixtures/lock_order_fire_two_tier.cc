// Fixture: lock-order MUST fire — the PR 8 two-tier scheduler shape,
// inverted. The TaskGraph bookkeeping mutex (rank 50) is OUTER; the
// pool dispatch mutex (rank 60) is INNER. Taking the graph mutex while
// the pool mutex is held deadlocks against the correct-order path.
// Linted as src/common/lock_order_fire_two_tier.cc.
#include "src/common/mutex.h"

namespace fastcoreset {

Mutex graph_mutex_{lock_rank::kTaskGraph};
Mutex pool_mutex_{lock_rank::kPoolDispatch};

void InvertedNesting() {
  MutexLock pool_hold(&pool_mutex_);
  MutexLock graph_hold(&graph_mutex_);  // inner -> outer: inversion
}

// FC_REQUIRES context counts as "held for the whole body".
void DrainLocked() FC_REQUIRES(pool_mutex_) {
  graph_mutex_.Lock();  // inversion: rank 50 while rank 60 is held
  graph_mutex_.Unlock();
}

}  // namespace fastcoreset
