// Fixture: raw-mutex MUST fire.
// Linted as src/service/raw_mutex_fire.cc.
#include <mutex>

namespace fastcoreset::service {

std::mutex g_lock;  // line 7

int Counted() {
  static int count = 0;
  std::lock_guard<std::mutex> hold(g_lock);  // line 11 (two findings)
  return ++count;
}

}  // namespace fastcoreset::service
