// Fixture: determinism-taint MUST NOT fire — worker counts and timer
// readings flowing ONLY into diagnostics fields (the sanctioned sink),
// or captured by a parallel body without touching the plan's extent.
// Linted as src/service/det_taint_clean_diag.cc.
#include "src/common/parallel.h"

namespace fastcoreset {

void Report(BuildResponse& response, int n) {
  int w = GetNumThreads();
  Timer build_timer;
  response.diagnostics.worker_count = w;
  response.diagnostics.build_seconds = build_timer.Seconds();
  ParallelFor(n, [w](int) { (void)w; });  // extent is n alone
}

}  // namespace fastcoreset
