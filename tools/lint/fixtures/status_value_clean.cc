// Fixture: status-value-unchecked MUST NOT fire.
// Linted as src/service/status_value_clean.cc.
#include "src/api/status.h"

namespace fastcoreset {

FcStatusOr<int> Lookup(int key);

int EarlyReturnGuard() {
  FcStatusOr<int> got = Lookup(3);
  if (!got.ok()) return -1;
  return got.value();
}

int ReGuardAfterReassign(bool flip) {
  FcStatusOr<int> got = Lookup(1);
  if (!got.ok()) return -1;
  if (flip) {
    got = Lookup(2);
    if (!got.ok()) return -2;
  }
  return got.value();
}

int AutoWithEvidence() {
  // `auto` declaration: tracked via the .ok() evidence heuristic (the
  // protocol.cc HandleStats shape), and the guard dominates the use.
  const auto entry = Lookup(9);
  if (!entry.ok()) return 0;
  return *entry;
}

int SuppressedChain() {
  // fc-lint: allow(status-value-unchecked): key was bound two lines up under the same lock, so the second resolve cannot miss
  return Lookup(7).value();
}

}  // namespace fastcoreset
