// Fixture: determinism-taint MUST fire — a worker-count-derived value
// and a timer reading both flow into the chunk plan's extent argument.
// The plan must be a function of n alone (the bit-reproducibility
// contract from PR 2/PR 8).
// Linted as src/core/det_taint_fire_chunk.cc.
#include "src/common/parallel.h"

namespace fastcoreset {

void PlanByWorkers(int n) {
  int workers = GetNumThreads();
  int per = n / workers;
  ParallelFor(per, [](int) {});  // tainted extent
}

void PlanByElapsed(int n, Timer& build_timer) {
  double elapsed = build_timer.Seconds();
  int budget = n - static_cast<int>(elapsed);
  ParallelChunkCount(budget);  // tainted extent
}

}  // namespace fastcoreset
