// Fixture: layering-violation MUST fire — geometry sits below core
// (an upward include inverts the DAG), and 'experimental' is not a
// module layers.toml knows about at all.
// Linted as src/geometry/layering_fire_undeclared.cc.
#include "src/common/check.h"
#include "src/core/coreset.h"
#include "src/experimental/prototype.h"
#include "src/geometry/point.h"

namespace fastcoreset::geometry {

double Distance() { return 0.0; }

}  // namespace fastcoreset::geometry
