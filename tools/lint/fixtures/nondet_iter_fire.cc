// Fixture: nondeterministic-iteration MUST fire.
// Linted as src/spread/nondet_iter_fire.cc.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fastcoreset {

using BoxIds = std::unordered_map<uint64_t, int32_t>;

std::vector<int32_t> CollectIds(const BoxIds& boxes) {
  std::vector<int32_t> out;
  for (const auto& kv : boxes) {  // line 14: order leaks into `out`
    out.push_back(kv.second);
  }
  return out;
}

int64_t SumKeys(const std::unordered_set<uint64_t>& seen) {
  int64_t sum = 0;
  for (auto it = seen.begin(); it != seen.end(); ++it) {  // line 22
    sum += static_cast<int64_t>(*it);
  }
  return sum;
}

}  // namespace fastcoreset
