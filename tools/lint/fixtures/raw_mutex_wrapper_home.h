// Fixture: the wrapper header itself is the one place raw primitives are
// allowed — the path exemption must hold. MUST NOT fire.
// Linted as src/common/mutex.h.
#ifndef FIXTURE_RAW_MUTEX_WRAPPER_HOME_H_
#define FIXTURE_RAW_MUTEX_WRAPPER_HOME_H_

#include <condition_variable>
#include <mutex>

namespace fastcoreset {

class Mutex {
 public:
  void Lock() { mu_.lock(); }
  void Unlock() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

}  // namespace fastcoreset

#endif  // FIXTURE_RAW_MUTEX_WRAPPER_HOME_H_
