// Fixture: umbrella-include MUST NOT fire — the facade plus the shared
// non-method layers (data, eval, common) are all fair game for benches.
// Linted as bench/umbrella_clean.cc.
#include "src/api/fastcoreset.h"

#include "src/common/rng.h"
#include "src/data/synthetic.h"
#include "src/eval/coreset_cost.h"

int main() { return 0; }
