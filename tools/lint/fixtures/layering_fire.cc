// Fixture: layering-violation MUST fire — service may not reach into
// clustering or streaming (its declared deps are common, geometry, core,
// data, api; everything else flows through the api facade).
// Linted as src/service/layering_fire.cc.
#include "src/api/fastcoreset.h"
#include "src/clustering/kmeans.h"
#include "src/common/check.h"
#include "src/streaming/bico_tree.h"

namespace fastcoreset::service {

int UseAll() { return 0; }

}  // namespace fastcoreset::service
