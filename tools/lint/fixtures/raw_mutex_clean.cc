// Fixture: raw-mutex MUST NOT fire — the annotated wrappers are the
// blessed spelling.
// Linted as src/service/raw_mutex_clean.cc.
#include "src/common/mutex.h"

namespace fastcoreset::service {

Mutex g_lock{lock_rank::kServiceScheduler};
int g_count FC_GUARDED_BY(g_lock) = 0;

int Counted() {
  MutexLock hold(&g_lock);
  return ++g_count;
}

}  // namespace fastcoreset::service
