// Fixture: nondeterministic-iteration MUST NOT fire.
// Linted as src/spread/nondet_iter_clean.cc.
#include <algorithm>
#include <cstdint>
#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fastcoreset {

// Lookup and insertion only — no iteration, order never observed.
int32_t IdFor(std::unordered_map<uint64_t, int32_t>& ids, uint64_t key) {
  auto [it, inserted] = ids.try_emplace(key, static_cast<int32_t>(ids.size()));
  return it->second;
}

// An order-insensitive sink (count), with the required rationale.
size_t CountDistinct(const std::unordered_set<uint64_t>& seen) {
  size_t n = 0;
  // fc-lint: allow(nondeterministic-iteration): the loop only increments a counter, which is invariant under iteration order
  for (auto it = seen.begin(); it != seen.end(); ++it) {
    ++n;
  }
  return n;
}

// The blessed pattern: copy out, sort, then iterate deterministically.
std::vector<uint64_t> SortedKeys(const std::unordered_set<uint64_t>& seen) {
  std::vector<uint64_t> keys(seen.size());
  size_t i = 0;
  // fc-lint: allow(nondeterministic-iteration): keys are sorted immediately below before any order-sensitive use
  for (auto it = seen.begin(); it != seen.end(); ++it) {
    keys[i++] = *it;
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace fastcoreset
