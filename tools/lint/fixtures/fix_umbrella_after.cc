// Fixture: --fix input — two per-method headers; the first becomes the
// umbrella facade, the second is deleted. The suppressed include stays.
// Rewritten as bench/fix_umbrella.cc.
#include "src/api/fastcoreset.h"

#include <vector>

// fc-lint: allow(umbrella-include): measures the method without facade dispatch overhead
#include "src/core/sensitivity_sampling.h"

int main() { return 0; }
