// Fixture: status-value-unchecked MUST fire.
// Linted as src/service/status_value_fire.cc.
#include "src/api/status.h"

namespace fastcoreset {

FcStatusOr<int> Lookup(int key);

int ChainedValue() {
  // The PR 6 TOCTOU shape: status checked on one call, value taken from a
  // *second* call whose status was never looked at.
  return Lookup(7).value();  // line 12: chained .value()
}

int UnguardedNamed() {
  FcStatusOr<int> got = Lookup(3);
  return got.value();  // line 17: no dominating .ok()
}

int GuardInvalidatedByReassign(bool flip) {
  FcStatusOr<int> got = Lookup(1);
  if (!got.ok()) return -1;
  if (flip) got = Lookup(2);  // reassignment clears the guard...
  return got.value();  // line 24: ...so this is unchecked again
}

struct Thing {
  int field;
};

int ArrowUnguarded() {
  FcStatusOr<Thing*> thing = Lookup2();
  return thing.value()->field;  // line 33: unguarded .value()
}

FcStatusOr<Thing*> Lookup2();

}  // namespace fastcoreset
