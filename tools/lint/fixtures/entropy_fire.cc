// Fixture: banned-entropy MUST fire.
// Linted as src/core/entropy_fire.cc.
#include <chrono>
#include <cstdlib>
#include <random>

namespace fastcoreset {

double JitterSeed() {
  std::random_device dev;  // line 10: hardware entropy
  std::mt19937 gen(dev());  // line 11: unseeded-from-Rng engine
  return static_cast<double>(gen());
}

long WallClockSalt() {
  auto t = std::chrono::steady_clock::now();  // line 16 (two findings)
  (void)t;
  return rand();  // line 18: libc rand
}

}  // namespace fastcoreset
