// Fixture: the Timer abstraction is the one place in src/ allowed to read
// the wall clock — the path allowlist must hold. MUST NOT fire.
// Linted as src/common/timer.h.
#ifndef FIXTURE_ENTROPY_TIMER_HOME_H_
#define FIXTURE_ENTROPY_TIMER_HOME_H_

#include <chrono>

namespace fastcoreset {

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}

  double ElapsedSeconds() const {
    const auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(end - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace fastcoreset

#endif  // FIXTURE_ENTROPY_TIMER_HOME_H_
