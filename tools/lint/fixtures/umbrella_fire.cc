// Fixture: umbrella-include MUST fire — a bench reaching past the facade
// into per-method compression headers.
// Linted as bench/umbrella_fire.cc.
#include "src/core/fast_coreset.h"    // line 4: internal since PR 4
#include "src/streaming/streamkm.h"   // line 5: internal since PR 4

#include "src/api/fastcoreset.h"

int main() { return 0; }
