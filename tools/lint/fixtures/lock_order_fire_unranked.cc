// Fixture: lock-order MUST fire on declarations that the hierarchy
// cannot account for — an unranked Mutex, and a ranked one with no
// [[lock]] entry for this file in lock_hierarchy.toml.
// Linted as src/service/lock_order_fire_unranked.cc.
#include "src/common/mutex.h"

namespace fastcoreset::service {

Mutex g_mu;

Mutex cache_mutex_{lock_rank::kCoresetCache};

int Work() {
  MutexLock hold(&g_mu);
  return 1;
}

}  // namespace fastcoreset::service
