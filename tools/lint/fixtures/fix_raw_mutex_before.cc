// Fixture: --fix input — the wrapper header is already included, so
// both raw includes are simply deleted.
// Rewritten as src/service/fix_raw_mutex.cc.
#include <condition_variable>
#include <mutex>

#include "src/common/mutex.h"

int main() { return 0; }
