// Fixture: layering-violation MUST NOT fire — api declares common,
// geometry, clustering, core, and streaming as deps; same-module and
// system includes are always allowed.
// Linted as src/api/layering_clean.cc.
#include "src/api/registry.h"

#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/core/coreset.h"
#include "src/streaming/bico_tree.h"
#include "third_party/somelib/somelib.h"

namespace fastcoreset::api {

int Facade() { return 0; }

}  // namespace fastcoreset::api
