// Fixture: src/ files may include the per-method headers freely — the
// umbrella rule only binds bench/ and examples/. MUST NOT fire.
// Linted as src/api/umbrella_out_of_scope.cc.
#include "src/core/fast_coreset.h"
#include "src/streaming/bico.h"

namespace fastcoreset {}
