// Fixture: bad-suppression MUST fire — every allow() needs a written
// rationale and a known rule id, otherwise the suppression itself errors.
// Linted as src/service/bad_suppression_fire.cc.
#include "src/api/status.h"

namespace fastcoreset::service {

FcStatusOr<int> Lookup(int key);

int MissingRationale() {
  // fc-lint: allow(status-value-unchecked)
  return Lookup(1).value();
}

int EmptyRationale() {
  // fc-lint: allow(status-value-unchecked):
  return Lookup(2).value();
}

int UnknownRule() {
  // fc-lint: allow(status-value-uncheked): typo'd rule ids must not silently suppress nothing
  return Lookup(3).value();
}

}  // namespace fastcoreset::service
