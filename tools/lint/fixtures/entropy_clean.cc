// Fixture: banned-entropy MUST NOT fire — seeded Rng for randomness.
// Linted as src/core/entropy_clean.cc.
#include "src/common/rng.h"

namespace fastcoreset {

double DeterministicDraw(uint64_t seed) {
  Rng rng(seed);
  return rng.UniformDouble();
}

// A member named `time` is not the libc call.
struct Sample {
  double time;
};

double ReadTime(const Sample& s) { return s.time; }

}  // namespace fastcoreset
