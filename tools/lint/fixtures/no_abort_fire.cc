// Fixture: no-abort-in-service MUST fire.
// Linted as src/service/no_abort_fire.cc.
#include "src/common/check.h"

#include <cstdlib>
#include <stdexcept>

namespace fastcoreset::service {

int HandleBadRequest(int n) {
  FC_CHECK(n >= 0);  // line 11: aborts on a *request* error
  if (n > 100) {
    throw std::runtime_error("too big");  // line 13: throw
  }
  if (n == 42) {
    std::abort();  // line 16: abort
  }
  if (n == 7) {
    exit(1);  // line 19: exit
  }
  return n;
}

}  // namespace fastcoreset::service
