// Fixture: determinism-taint MUST fire — thread-count-derived values
// assigned into a sampler seed and into a non-diagnostics BuildResult
// field. Only diagnostics may depend on scheduling.
// Linted as src/service/det_taint_fire_result.cc.
#include "src/common/parallel.h"

namespace fastcoreset {

struct SamplerSpec {
  unsigned seed;
};

void Fill(BuildResult& result, SamplerSpec& spec) {
  int w = ThreadPoolWorkerCount();
  spec.seed = 77u + w;        // seed sink
  result.rows = w * 4;        // non-diagnostics result field
  result.diagnostics.worker_count = w;  // allowed
}

}  // namespace fastcoreset
