// Fixture: the exact PR 6 server-abort TOCTOU, reduced from
// src/service/protocol.cc HandleRegister. MUST fire.
// Linted as src/service/toctou_pr6.cc.
#include "src/service/service.h"

namespace fastcoreset::service {

FcStatus HandleRegisterPr6(DatasetStore& store, const std::string& name) {
  auto status = store.Contains(name);
  if (!status.ok()) return status.status();
  // BUG (the PR 6 shape): between Contains() above and Get() below a
  // concurrent Remove(name) can unbind the name; Get() then returns
  // NotFound and .value() aborts the whole server.
  const DatasetEntry* entry = store.Get(name).value();  // the unguarded resolve
  (void)entry;
  return FcStatus::Ok();
}

}  // namespace fastcoreset::service
