// Fixture: lock-order MUST NOT fire — the same two-tier scheduler
// shape acquired in rank order (graph rank 50 outer, pool rank 60
// inner), sequential reacquisition after release, and an FC_REQUIRES
// context that only takes deeper locks.
// Linted as src/common/lock_order_clean.cc.
#include "src/common/mutex.h"

namespace fastcoreset {

Mutex graph_mutex_{lock_rank::kTaskGraph};
Mutex pool_mutex_{lock_rank::kPoolDispatch};

void OrderedNesting() {
  MutexLock graph_hold(&graph_mutex_);
  MutexLock pool_hold(&pool_mutex_);
}

void SequentialReacquire() {
  pool_mutex_.Lock();
  pool_mutex_.Unlock();
  graph_mutex_.Lock();  // fine: the pool mutex is no longer held
  graph_mutex_.Unlock();
}

void DispatchLocked() FC_REQUIRES(graph_mutex_) {
  MutexLock pool_hold(&pool_mutex_);  // outer -> inner: correct order
}

}  // namespace fastcoreset
