// fc_serve: the coreset-build service over newline-delimited JSON on
// stdin/stdout — register datasets (CSV, inline rows, synthetic
// generators), issue sharded/cached build requests, inspect cache and
// scheduler stats, evict. One request line in, one response line out,
// until EOF; every response line leads with the protocol version
// ("v":1); malformed requests produce error-response lines and never
// terminate the server. Sharded builds run on the task-graph scheduler
// tier — "parallelism" caps its worker budget (0 = all workers) without
// changing the resulting coreset. See src/service/protocol.h for the
// full request/response schema and the README's "Service layer" section
// for a transcript.
//
//   fc_serve [--cache-capacity N]
//
// Example session:
//   {"verb":"register","name":"d","csv":"points.csv"}
//   {"verb":"build","dataset":"d","method":"fast_coreset","k":10,
//    "seed":1,"shards":4,"parallelism":2}
//   {"verb":"stats"}

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "src/service/protocol.h"
#include "src/service/service.h"

int main(int argc, char** argv) {
  using namespace fastcoreset;

  service::ServiceOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cache-capacity") == 0 && i + 1 < argc) {
      const char* value = argv[++i];
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(value, &end, 10);
      if (end == value || *end != '\0') {
        // A typoed capacity must fail loudly, not silently become 0
        // (which would disable caching entirely).
        std::fprintf(stderr, "invalid --cache-capacity '%s'\n", value);
        return 2;
      }
      options.cache_capacity = static_cast<size_t>(parsed);
    } else {
      std::fprintf(stderr, "usage: %s [--cache-capacity N]\n", argv[0]);
      return 2;
    }
  }

  service::CoresetService coreset_service(options);
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    // One response line per request line; flush so a driving process can
    // read each response before sending the next request.
    std::fputs(service::HandleRequestLine(coreset_service, line).c_str(),
               stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  }
  return 0;
}
