// fc_serve: the coreset-build service over newline-delimited JSON —
// register datasets (CSV, inline rows, synthetic generators), issue
// sharded/cached build requests, inspect cache and scheduler stats,
// evict. One request line in, one response line out; every response
// line leads with the protocol version ("v":1); malformed requests
// produce error-response lines and never terminate the server. Sharded
// builds run on the task-graph scheduler tier — "parallelism" caps its
// worker budget (0 = all workers) without changing the resulting
// coreset. See src/service/protocol.h for the full request/response
// schema and the README's "Service layer" / "Network daemon" sections.
//
// Transports:
//   default          stdin/stdout, one request per line until EOF.
//   --listen PORT    loopback TCP daemon (port 0 = ephemeral; the bound
//                    port is announced on stdout). Serves many clients
//                    concurrently over a bounded request queue; when the
//                    queue is full, requests are shed with a structured
//                    "unavailable" error. SIGTERM/SIGINT drain
//                    gracefully: stop accepting, finish in-flight
//                    builds, flush responses, exit 0.
//
// Example session:
//   {"verb":"register","name":"d","csv":"points.csv"}
//   {"verb":"build","dataset":"d","method":"fast_coreset","k":10,
//    "seed":1,"shards":4,"parallelism":2}
//   {"verb":"stats"}

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "src/net/net_server.h"
#include "src/service/protocol.h"
#include "src/service/service.h"

namespace {

constexpr char kUsage[] =
    "usage: fc_serve [--cache-capacity N] [--listen PORT]\n"
    "                [--workers N] [--max-queue N] [--max-sessions N]\n"
    "                [--max-line-bytes N] [--max-inflight N]\n"
    "                [--idle-timeout SECONDS] [--help] [--version]\n"
    "\n"
    "Coreset-build service speaking newline-delimited JSON (protocol\n"
    "v1). Default transport is stdin/stdout; --listen starts a\n"
    "loopback-only TCP daemon instead (port 0 picks an ephemeral port,\n"
    "announced on stdout). The network flags bound the daemon's\n"
    "admission control; they are rejected without --listen.\n";

/// The daemon being drained by the signal handler. Written once before
/// signals are installed, read only by the handler.
fastcoreset::net::NetServer* g_server = nullptr;

void HandleDrainSignal(int) {
  // Async-signal-safe by contract of RequestDrain (atomic store + one
  // write(2) on the wakeup pipe).
  if (g_server != nullptr) g_server->RequestDrain();
}

/// Parses a non-negative integer flag value; exits with usage status 2
/// on garbage — a typoed knob must fail loudly, not silently become 0.
unsigned long long ParseCount(const char* flag, const char* value) {
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') {
    std::fprintf(stderr, "invalid %s '%s'\n%s", flag, value, kUsage);
    std::exit(2);
  }
  return parsed;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fastcoreset;

  service::ServiceOptions options;
  net::NetServerOptions net_options;
  bool listen_mode = false;
  bool net_flags_seen = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      std::fputs(kUsage, stdout);
      return 0;
    }
    if (std::strcmp(arg, "--version") == 0) {
      std::printf("fc_serve (fastcoreset) protocol v%llu\n",
                  static_cast<unsigned long long>(
                      service::kProtocolVersion));
      return 0;
    }
    if (std::strcmp(arg, "--cache-capacity") == 0 && has_value) {
      options.cache_capacity =
          static_cast<size_t>(ParseCount(arg, argv[++i]));
    } else if (std::strcmp(arg, "--listen") == 0 && has_value) {
      const unsigned long long port = ParseCount(arg, argv[++i]);
      if (port > 65535) {
        std::fprintf(stderr, "invalid --listen port %llu\n%s", port,
                     kUsage);
        return 2;
      }
      net_options.port = static_cast<uint16_t>(port);
      listen_mode = true;
    } else if (std::strcmp(arg, "--workers") == 0 && has_value) {
      net_options.workers = static_cast<size_t>(ParseCount(arg, argv[++i]));
      net_flags_seen = true;
    } else if (std::strcmp(arg, "--max-queue") == 0 && has_value) {
      net_options.max_queue =
          static_cast<size_t>(ParseCount(arg, argv[++i]));
      net_flags_seen = true;
    } else if (std::strcmp(arg, "--max-sessions") == 0 && has_value) {
      net_options.max_sessions =
          static_cast<size_t>(ParseCount(arg, argv[++i]));
      net_flags_seen = true;
    } else if (std::strcmp(arg, "--max-line-bytes") == 0 && has_value) {
      net_options.session.max_line_bytes =
          static_cast<size_t>(ParseCount(arg, argv[++i]));
      net_flags_seen = true;
    } else if (std::strcmp(arg, "--max-inflight") == 0 && has_value) {
      net_options.session.max_inflight =
          static_cast<size_t>(ParseCount(arg, argv[++i]));
      net_flags_seen = true;
    } else if (std::strcmp(arg, "--idle-timeout") == 0 && has_value) {
      char* end = nullptr;
      const double seconds = std::strtod(argv[i + 1], &end);
      if (end == argv[i + 1] || *end != '\0') {
        std::fprintf(stderr, "invalid --idle-timeout '%s'\n%s",
                     argv[i + 1], kUsage);
        return 2;
      }
      ++i;
      net_options.idle_timeout_seconds = seconds;
      net_flags_seen = true;
    } else {
      std::fprintf(stderr, "unknown or incomplete flag '%s'\n%s", arg,
                   kUsage);
      return 2;
    }
  }
  if (net_flags_seen && !listen_mode) {
    std::fprintf(stderr, "network flags require --listen\n%s", kUsage);
    return 2;
  }

  service::CoresetService coreset_service(options);

  if (listen_mode) {
    net::NetServer server(coreset_service, net_options);
    const api::FcStatus status = server.Start();
    if (!status.ok()) {
      std::fprintf(stderr, "fc_serve: %s\n", status.message().c_str());
      return 1;
    }
    g_server = &server;
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = HandleDrainSignal;
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);
    // Announce the bound port (meaningful with --listen 0) so drivers
    // can connect without racing the bind.
    std::printf("fc_serve: listening on 127.0.0.1:%u\n",
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);
    server.Serve();
    g_server = nullptr;
    return 0;
  }

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    // One response line per request line; flush so a driving process can
    // read each response before sending the next request.
    std::fputs(service::HandleRequestLine(coreset_service, line).c_str(),
               stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  }
  return 0;
}
